//! Command-line front end for building, inspecting, querying and **serving**
//! WC-INDEX snapshots from edge-list or DIMACS graph files.
//!
//! ```text
//! wcsd-cli build <graph-file> <index-file> [--ordering degree|tree|hybrid] [--threads N] [--flat] [--hot] [--dimacs]
//! wcsd-cli stats <graph-file> [--dimacs]
//! wcsd-cli stats <host:port> [--json]
//! wcsd-cli query <graph-file> <index-file> <s> <t> <w> [--impl pair|bucket|merge|chunked] [--dimacs]
//! wcsd-cli serve <graph-file> <index-file-or-snapshot-dir> [--port P] [--threads N] [--cache-size N] [--max-pending N] [--slow-query-ms N] [--impl I] [--no-metrics] [--dimacs]
//! wcsd-cli client <host:port> <command> [args...]
//! wcsd-cli metrics <host:port> [--recent]
//! wcsd-cli reload <host:port> <index-file>
//! wcsd-cli feed <graph-file> <updates-file> <snapshot-dir> [--addr H:P] [--batch N] [--threads N] [--ordering ...] [--repair-threshold F] [--json PATH] [--dimacs]
//! wcsd-cli partition <graph-file> <out-dir> [--shards N] [--seed S] [--ordering ...] [--threads N] [--dimacs]
//! wcsd-cli route <overlay-file> <backend-group> [<backend-group>...] [--port P] [--backend-timeout-ms N] [--probe-interval-ms N] [--cache-size N] [--no-metrics]
//! ```
//!
//! `feed` is the streaming-freshness front end: it builds a dynamic index
//! over the graph, applies an edge-update stream (`add u v q` / `remove u v`
//! lines; deletions use the decremental label repair), writes one
//! generation-numbered `WCIF` snapshot per `--batch` updates into
//! `<snapshot-dir>`, and — with `--addr` — hot-swaps each snapshot into the
//! running server via `RELOAD`, reporting the update-to-servable freshness
//! latency (`--json` additionally writes the machine-readable record).
//!
//! `build --flat` writes the read-optimized `WCIF` snapshot (contiguous
//! struct-of-arrays arena; loads with a validated bulk copy, no per-vertex
//! allocation or re-sort) instead of the nested `WCIX` format. `build --hot`
//! (implies `--flat`) additionally applies the hot-group layout — each
//! vertex's hub groups reordered by rank, `WCIF` version 2 — which the
//! chunked merge kernel walks with better locality; answers are
//! bit-identical either way. `query` and `serve` detect the format from the
//! snapshot magic, so either file works everywhere an index file is
//! expected; `serve` always serves from the flat representation, converting
//! a nested snapshot once at load.
//!
//! `--impl pair|bucket|merge|chunked` selects the query implementation
//! (`query` answers with it; `serve` uses it for every inline and `BATCH`
//! answer). All four are bit-identical — `merge` is the paper's `Query⁺`
//! directory merge and the default; `chunked` is the branch-free masked-min
//! kernel of `wcsd_core::kernel`.
//!
//! `serve` loads the graph and index once, then answers queries over a
//! loopback TCP socket until a client sends `SHUTDOWN`; `client` sends one
//! protocol command and prints the reply; `reload` hot-swaps the served
//! snapshot for another index file without dropping connections (the path
//! is resolved on the serving host — `reload` absolutizes it first, since
//! CLI and server share a machine on the loopback deployment).
//!
//! `partition` and `route` are the sharded serving tier. `partition` splits
//! the graph into `--shards` shards with the deterministic seeded balanced
//! BFS partitioner, builds one WC-INDEX⁺ per shard **subgraph** (global
//! vertex ids, intra-shard edges only) and writes `shard-<i>.fidx` `WCIF`
//! snapshots plus `overlay.wcso` — the boundary-vertex overlay through which
//! per-shard answers compose exactly — into `<out-dir>`. Serve each shard
//! snapshot with a plain `wcsd-cli serve`, then point `route` at the overlay
//! and the backend groups (in shard order): the router answers
//! `QUERY`/`BATCH`/`WITHIN` on both wire protocols by fanning per-shard
//! `BATCH`es out over persistent binary clients and merging through the
//! overlay, bit-identical to the unsharded index.
//!
//! Each `<backend-group>` is one shard's replica set: either a single
//! `host:port`, a comma list `host:port,host:port` (replicas in preference
//! order, all serving the **same** shard snapshot), or the explicit
//! `shard<N>=host:port[,host:port...]` form which pins the group to shard
//! `N` regardless of argument order. A backend that misses its
//! `--backend-timeout-ms` budget is retried once on a fresh connection, then
//! its circuit breaker opens (`wcsd_router_degraded_backends` gauge counts
//! open breakers) and the request fails over to the shard's next replica —
//! only a fully-failed group yields `ERR`. A background prober exchanges a
//! `STATS` with every replica each `--probe-interval-ms` (default 1000, 0
//! disables), so a restarted backend is un-degraded within two probe
//! intervals without any client traffic (scrape the router's own `METRICS`;
//! `wcsd_router_fanout_total` counts backend exchanges,
//! `wcsd_router_probes_total` the health probes).
//!
//! ```text
//! wcsd-cli partition road.edges /tmp/shards --shards 2
//! wcsd-cli serve road.edges /tmp/shards/shard-0.fidx --port 7981 &
//! wcsd-cli serve road.edges /tmp/shards/shard-1.fidx --port 7982 &
//! wcsd-cli serve road.edges /tmp/shards/shard-1.fidx --port 7983 &   # replica of shard 1
//! wcsd-cli route /tmp/shards/overlay.wcso 127.0.0.1:7981 127.0.0.1:7982,127.0.0.1:7983 --port 7979 &
//! wcsd-cli client 127.0.0.1:7979 query 17 93 3
//! ```
//!
//! `stats <host:port>` (address detected by the `:`) fetches a running
//! server's counters and pretty-prints them, or emits one JSON object with
//! `--json`. `metrics <host:port>` scrapes the full Prometheus text
//! exposition — per-verb request counters, request-phase and reload-phase
//! latency histograms, cache/worker gauges — and with `--recent` dumps the
//! in-memory trace ring instead (reload/build/repair spans plus the
//! slow-query log captured when `serve` ran with `--slow-query-ms`).
//! `serve --no-metrics` disables histogram and trace recording (counters
//! stay on; this is the no-op baseline used by the overhead bench).
//!
//! ## Wire protocols
//!
//! The default wire protocol is newline-delimited text (see
//! `wcsd_server::protocol`):
//!
//! ```text
//! -> QUERY <s> <t> <w>        <- DIST <d> | INF
//! -> BATCH <n>                <- OK <n>, then n DIST/INF lines
//!    (then n "<s> <t> <w>" lines)
//! -> WITHIN <s> <t> <w> <d>   <- TRUE | FALSE
//! -> STATS                    <- STATS k=v k=v ...
//! -> METRICS [recent]         <- METRICS <len>, then <len> payload bytes
//!                                (Prometheus text; `recent`: trace JSON)
//! -> RELOAD <path>            <- RELOADED generation=<g> vertices=<n> entries=<m>
//! -> SHUTDOWN                 <- BYE
//! any malformed request       <- ERR <reason>
//! shed under overload         <- ERR busy: pending job queue is full; retry later
//! ```
//!
//! The shed reply (`BATCH`/`RELOAD` arriving while the server's pending-job
//! queue is at `--max-pending`) uses that exact wording on both protocols,
//! so clients can match it to retry with backoff.
//!
//! A connection whose first two bytes are `0xBF 0x01` (magic + version)
//! switches to the length-prefixed **binary protocol** (see
//! `wcsd_server::binary`): every frame is a little-endian `u32` body length
//! followed by the body, whose first byte is the opcode. Integers are
//! little-endian `u32`; answers are a `(tag u8, d u32)` pair with tag 0 =
//! unreachable:
//!
//! ```text
//! requests                          replies
//! 0x01 QUERY    s t w               0x81 DIST     tag d
//! 0x02 BATCH    n, n x (s t w)      0x82 BATCH    n, n x (tag d)
//! 0x03 WITHIN   s t w d             0x83 BOOL     u8
//! 0x04 STATS                        0x84 STATS    utf-8 stats line
//! 0x05 SHUTDOWN                     0x85 BYE
//! 0x06 RELOAD   utf-8 path          0x86 RELOADED utf-8 reloaded line
//! 0x07 METRICS  mode u8             0x87 METRICS  utf-8 payload
//!      (0 = full exposition, 1 = recent trace ring)
//!                                   0x88 BUSY     (empty: overload shed)
//!                                   0xFF ERR      utf-8 reason
//! ```
//!
//! The `loadgen` binary (`--binary`) and `wcsd_server::Client` speak both.
//!
//! Examples:
//!
//! ```text
//! wcsd-cli serve road.edges road.idx --port 7979 --cache-size 65536
//! wcsd-cli client 127.0.0.1:7979 query 17 93 3
//! wcsd-cli client 127.0.0.1:7979 stats
//! wcsd-cli reload 127.0.0.1:7979 road-v2.fidx
//! wcsd-cli feed road.edges road.updates /tmp/snapshots --addr 127.0.0.1:7979 --batch 32
//! wcsd-cli client 127.0.0.1:7979 shutdown
//! ```
//!
//! Run with: `cargo run --release --bin wcsd-cli -- <subcommand> ...`

use std::process::ExitCode;
use std::time::Duration;
use wcsd::prelude::*;
use wcsd_cliutil::{flag_value, positional_args};
use wcsd_graph::io::read_graph_file;
use wcsd_graph::{analysis, Graph};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  wcsd-cli build <graph-file> <index-file> [--ordering degree|tree|hybrid] [--threads N] [--flat] [--hot] [--dimacs]");
            eprintln!("  wcsd-cli stats <graph-file> [--dimacs]");
            eprintln!("  wcsd-cli stats <host:port> [--json]");
            eprintln!("  wcsd-cli query <graph-file> <index-file> <s> <t> <w> [--impl pair|bucket|merge|chunked] [--dimacs]");
            eprintln!("  wcsd-cli serve <graph-file> <index-file-or-snapshot-dir> [--port P] [--threads N] [--cache-size N] [--max-pending N] [--slow-query-ms N] [--impl I] [--no-metrics] [--dimacs]");
            eprintln!("  wcsd-cli client <host:port> <command> [args...]");
            eprintln!("  wcsd-cli metrics <host:port> [--recent]");
            eprintln!("  wcsd-cli reload <host:port> <index-file>");
            eprintln!("  wcsd-cli feed <graph-file> <updates-file> <snapshot-dir> [--addr H:P] [--batch N] [--threads N] [--ordering degree|tree|hybrid] [--repair-threshold F] [--json PATH] [--dimacs]");
            eprintln!("  wcsd-cli partition <graph-file> <out-dir> [--shards N] [--seed S] [--ordering degree|tree|hybrid] [--threads N] [--dimacs]");
            eprintln!("  wcsd-cli route <overlay-file> <backend-group> [<backend-group>...] [--port P] [--backend-timeout-ms N] [--probe-interval-ms N] [--cache-size N] [--no-metrics]");
            eprintln!("      (<backend-group>: host:port[,host:port...] in shard order, or shard<N>=host:port[,...])");
            ExitCode::FAILURE
        }
    }
}

/// Flags that consume the following argument as their value.
///
/// Classification depends on the subcommand: `--json` takes a path for
/// `feed` but is a boolean presence flag for the `stats` server mode, and a
/// single global list would eat the positional after it.
fn value_flags(args: &[String]) -> &'static [&'static str] {
    const COMMON: &[&str] = &[
        "--ordering",
        "--port",
        "--threads",
        "--cache-size",
        "--max-pending",
        "--addr",
        "--batch",
        "--repair-threshold",
        "--slow-query-ms",
        "--shards",
        "--seed",
        "--backend-timeout-ms",
        "--probe-interval-ms",
        "--impl",
    ];
    const WITH_JSON_PATH: &[&str] = &[
        "--ordering",
        "--port",
        "--threads",
        "--cache-size",
        "--max-pending",
        "--addr",
        "--batch",
        "--repair-threshold",
        "--slow-query-ms",
        "--shards",
        "--seed",
        "--backend-timeout-ms",
        "--probe-interval-ms",
        "--impl",
        "--json",
    ];
    match args.iter().find(|a| !a.starts_with("--")).map(|s| s.as_str()) {
        Some("stats") | Some("metrics") => COMMON,
        _ => WITH_JSON_PATH,
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let use_dimacs = args.iter().any(|a| a == "--dimacs");
    // --hot implies --flat: the hot-group layout only exists in WCIF.
    let use_hot = args.iter().any(|a| a == "--hot");
    let use_flat = use_hot || args.iter().any(|a| a == "--flat");
    let ordering = parse_ordering(args)?;
    let positional = positional_args(args, value_flags(args));

    match positional.first().map(|s| s.as_str()) {
        Some("build") => {
            let [_, graph_path, index_path] = positional[..] else {
                return Err("build requires <graph-file> <index-file>".to_string());
            };
            let graph = read_graph_file(graph_path, use_dimacs)?;
            // --threads N: construction workers (0 = all cores); the index is
            // identical for every thread count.
            let threads: usize = flag_value(args, "--threads")?.unwrap_or(1);
            let start = std::time::Instant::now();
            let index = IndexBuilder::new().ordering(ordering).threads(threads).build(&graph);
            let stats = index.stats();
            // --flat: write the read-optimized WCIF snapshot (loads with a
            // validated bulk copy) instead of the nested WCIX format.
            // --hot: additionally rank-order each vertex's hub groups (WCIF
            // v2) for the chunked kernel's access pattern.
            let encoded = if use_hot {
                FlatIndex::from_index(&index).to_hot().encode()
            } else if use_flat {
                FlatIndex::from_index(&index).encode()
            } else {
                index.encode()
            };
            std::fs::write(index_path, &encoded)
                .map_err(|e| format!("cannot write {index_path}: {e}"))?;
            println!(
                "built {} index for {} vertices / {} edges in {:.2?} ({} thread(s)): {} entries ({:.2} per vertex, {:.3} MiB) -> {index_path}",
                if use_hot {
                    "flat (WCIF v2, hot groups)"
                } else if use_flat {
                    "flat (WCIF)"
                } else {
                    "nested (WCIX)"
                },
                graph.num_vertices(),
                graph.num_edges(),
                start.elapsed(),
                threads,
                stats.total_entries,
                stats.avg_label_size,
                stats.megabytes()
            );
            Ok(())
        }
        Some("stats") => {
            let [_, graph_path] = positional[..] else {
                return Err("stats requires <graph-file> or <host:port>".to_string());
            };
            // A `:` marks the argument as a server address (filenames with
            // colons are not worth supporting here): fetch the live
            // counters instead of analysing a graph file.
            if graph_path.contains(':') {
                return server_stats(graph_path, args.iter().any(|a| a == "--json"));
            }
            let graph = read_graph_file(graph_path, use_dimacs)?;
            let deg = analysis::degree_stats(&graph);
            let comps = analysis::connected_components(&graph);
            println!("vertices:            {}", graph.num_vertices());
            println!("edges:               {}", graph.num_edges());
            println!("distinct qualities:  {}", graph.num_distinct_qualities());
            println!("degree min/med/max:  {}/{}/{}", deg.min, deg.median, deg.max);
            println!("average degree:      {:.3}", deg.mean);
            println!("components:          {}", analysis::num_components(&comps));
            println!("largest component:   {}", analysis::largest_component_size(&comps));
            Ok(())
        }
        Some("query") => {
            let [_, graph_path, index_path, s, t, w] = positional[..] else {
                return Err("query requires <graph-file> <index-file> <s> <t> <w>".to_string());
            };
            let graph = read_graph_file(graph_path, use_dimacs)?;
            let index = load_index(index_path, &graph)?;
            let s: VertexId = s.parse().map_err(|_| format!("invalid vertex {s:?}"))?;
            let t: VertexId = t.parse().map_err(|_| format!("invalid vertex {t:?}"))?;
            let w: Quality = w.parse().map_err(|_| format!("invalid constraint {w:?}"))?;
            let n = graph.num_vertices();
            for v in [s, t] {
                if v as usize >= n {
                    return Err(format!("vertex {v} out of range (graph has vertices 0..{n})"));
                }
            }
            let imp = parse_impl(args)?.unwrap_or(QueryImpl::Merge);
            let answer = index.distance_with(s, t, w, imp);
            match answer {
                Some(d) => println!("dist_{w}({s}, {t}) = {d}"),
                None => println!("dist_{w}({s}, {t}) = INF (no {w}-constrained path)"),
            }
            // Cross-check against the online oracle so the CLI doubles as a
            // verification tool.
            let oracle = wcsd::baselines::online::constrained_bfs(&graph, s, t, w);
            if oracle != answer {
                return Err("index answer disagrees with the online BFS oracle".to_string());
            }
            Ok(())
        }
        Some("serve") => {
            let [_, graph_path, index_path] = positional[..] else {
                return Err("serve requires <graph-file> <index-file-or-snapshot-dir>".to_string());
            };
            let graph = read_graph_file(graph_path, use_dimacs)?;
            // The server always serves the flat representation; a nested
            // WCIX snapshot is frozen once here at load time. A directory
            // (e.g. a feed snapshot dir) recovers the newest *valid*
            // generation, so a torn final write falls back to the previous
            // one.
            let index = if std::path::Path::new(index_path).is_dir() {
                let (flat, picked) = wcsd::server::load_newest_valid_snapshot(index_path.as_ref())?;
                println!("recovered newest valid snapshot {}", picked.display());
                flat
            } else {
                load_index(index_path, &graph)?.into_flat()
            };
            if index.num_vertices() != graph.num_vertices() {
                return Err(format!(
                    "index covers {} vertices but the graph has {}",
                    index.num_vertices(),
                    graph.num_vertices()
                ));
            }
            let index = std::sync::Arc::new(index);
            let mut config = ServerConfig::default();
            if let Some(port) = flag_value(args, "--port")? {
                config.port = port;
            }
            if let Some(threads) = flag_value(args, "--threads")? {
                config.batch_threads = threads;
            }
            if let Some(cache) = flag_value(args, "--cache-size")? {
                config.cache_capacity = cache;
            }
            // Admission control: offloaded work (BATCH/RELOAD) beyond this
            // many pending jobs is shed with the busy reply instead of
            // queueing without bound.
            if let Some(pending) = flag_value(args, "--max-pending")? {
                config.max_pending_jobs = pending;
            }
            // Observability wiring: requests at least this slow land in the
            // trace ring (`wcsd-cli metrics --recent`); `--no-metrics` turns
            // histogram/trace recording off (counters stay on for STATS).
            config.slow_query_ms = flag_value(args, "--slow-query-ms")?;
            config.metrics_enabled = !args.iter().any(|a| a == "--no-metrics");
            // Query implementation for every inline and BATCH answer (all
            // bit-identical; `chunked` selects the branch-free kernels).
            if let Some(imp) = parse_impl(args)? {
                config.query_impl = imp;
            }
            // The process-global registry, so core build/repair phases from
            // this process and the serving metrics share one METRICS scrape.
            config.registry = Some(wcsd_obs::global().clone());
            let stats = index.stats();
            let server = Server::bind_flat(index, config.clone())
                .map_err(|e| format!("cannot bind: {e}"))?;
            println!(
                "wcsd-server listening on {} ({} vertices, {} entries, {} batch threads, cache {})",
                server.local_addr(),
                stats.num_vertices,
                stats.total_entries,
                config.batch_threads,
                config.cache_capacity
            );
            let summary = server.run();
            println!(
                "shut down after {} connections, {} queries, {} batches ({} batched queries), cache hit rate {:.1}%",
                summary.connections,
                summary.queries,
                summary.batches,
                summary.batch_queries,
                100.0 * summary.hit_rate()
            );
            Ok(())
        }
        Some("client") => {
            let [_, addr, command @ ..] = &positional[..] else {
                return Err("client requires <host:port> <command> [args...]".to_string());
            };
            if command.is_empty() {
                return Err("client requires a command (query/within/stats/shutdown)".to_string());
            }
            // Only single-line request/reply commands are forwarded: BATCH
            // needs a body the one-shot roundtrip cannot send, and RELOAD
            // needs its path resolved on this side (`wcsd-cli reload` does
            // that; a raw forwarded path would resolve against the server's
            // working directory instead).
            let verb = command[0].to_ascii_uppercase();
            if !["QUERY", "WITHIN", "STATS", "SHUTDOWN"].contains(&verb.as_str()) {
                return Err(format!(
                    "unsupported client command {:?} (use query/within/stats/shutdown; \
                     for batch traffic use the loadgen binary, for reload use \
                     `wcsd-cli reload`)",
                    command[0]
                ));
            }
            let line = command.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(" ");
            let mut client = Client::connect_retry(addr.as_str(), Duration::from_secs(5))
                .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            let reply = client.roundtrip(&line)?;
            println!("{reply}");
            if reply.starts_with("ERR ") {
                return Err(wcsd::server::protocol::server_error(&reply));
            }
            Ok(())
        }
        Some("metrics") => {
            let [_, addr] = positional[..] else {
                return Err("metrics requires <host:port>".to_string());
            };
            let recent = args.iter().any(|a| a == "--recent");
            let mut client = Client::connect_retry(addr.as_str(), Duration::from_secs(5))
                .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            // Full scrape is Prometheus text exposition; `--recent` is the
            // trace-ring JSON (reload spans, slow-query log).
            let payload = client.metrics(recent)?;
            print!("{payload}");
            if !payload.ends_with('\n') {
                println!();
            }
            Ok(())
        }
        Some("reload") => {
            let [_, addr, index_path] = positional[..] else {
                return Err("reload requires <host:port> <index-file>".to_string());
            };
            // The server resolves the path on *its* filesystem; absolutize
            // (and existence-check) on this side first, since the loopback
            // deployment shares a machine but rarely a working directory.
            let absolute = std::fs::canonicalize(index_path)
                .map_err(|e| format!("cannot resolve {index_path}: {e}"))?;
            let absolute =
                absolute.to_str().ok_or_else(|| format!("non-UTF-8 path {absolute:?}"))?;
            // The binary protocol frames arbitrary paths (the text verb
            // cannot carry whitespace), so the admin front end speaks it.
            let mut client =
                Client::connect_retry_with(addr.as_str(), Duration::from_secs(5), Protocol::Binary)
                    .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            let info = client.reload(absolute)?;
            println!(
                "reloaded {index_path}: now serving generation {} ({} vertices, {} entries)",
                info.generation, info.vertices, info.entries
            );
            Ok(())
        }
        Some("partition") => {
            let [_, graph_path, out_dir] = positional[..] else {
                return Err("partition requires <graph-file> <out-dir>".to_string());
            };
            let graph = read_graph_file(graph_path, use_dimacs)?;
            let shards: usize = flag_value(args, "--shards")?.unwrap_or(2);
            if shards == 0 {
                return Err("--shards must be at least 1".to_string());
            }
            let seed: u64 = flag_value(args, "--seed")?.unwrap_or(0);
            let threads: usize = flag_value(args, "--threads")?.unwrap_or(1);
            let out = std::path::Path::new(out_dir);
            std::fs::create_dir_all(out).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
            let start = std::time::Instant::now();
            let partition = Partition::build(&graph, shards, seed);
            let overlay = wcsd::core::overlay::OverlayIndex::build(&graph, &partition);
            let overlay_path = out.join("overlay.wcso");
            std::fs::write(&overlay_path, overlay.encode())
                .map_err(|e| format!("cannot write {}: {e}", overlay_path.display()))?;
            // One read-optimized WCIF snapshot per shard, over the shard's
            // intra-shard subgraph in *global* ids — any snapshot serves
            // directly with `wcsd-cli serve` and range-checks like the
            // unsharded index.
            for shard in 0..shards as u32 {
                let sub = partition.shard_subgraph(&graph, shard);
                let index = IndexBuilder::new().ordering(ordering).threads(threads).build(&sub);
                let flat = FlatIndex::from_index(&index);
                let path = out.join(format!("shard-{shard}.fidx"));
                std::fs::write(&path, flat.encode())
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                println!(
                    "shard {shard}: {} vertices, {} intra-shard edges, {} label entries -> {}",
                    partition.shard_sizes()[shard as usize],
                    sub.num_edges(),
                    flat.total_entries(),
                    path.display()
                );
            }
            println!(
                "partitioned {} vertices / {} edges into {shards} shard(s) in {:.2?}: \
                 {} boundary vertices, {} cut edges, {} overlay edges -> {}",
                graph.num_vertices(),
                graph.num_edges(),
                start.elapsed(),
                overlay.num_boundary(),
                partition.cut_edges(&graph).count(),
                overlay.num_edges(),
                overlay_path.display()
            );
            Ok(())
        }
        Some("route") => {
            let [_, overlay_path, backends @ ..] = &positional[..] else {
                return Err("route requires <overlay-file> <backend-group> [<backend-group>...]"
                    .to_string());
            };
            if backends.is_empty() {
                return Err("route requires at least one backend group".to_string());
            }
            let data = std::fs::read(overlay_path)
                .map_err(|e| format!("cannot read {overlay_path}: {e}"))?;
            let overlay = wcsd::core::overlay::OverlayIndex::decode(&data)
                .map_err(|e| format!("corrupt overlay: {e}"))?;
            let mut config = RouterConfig::default();
            if let Some(port) = flag_value(args, "--port")? {
                config.port = port;
            }
            if let Some(ms) = flag_value::<u64>(args, "--backend-timeout-ms")? {
                config.backend_timeout = Duration::from_millis(ms);
            }
            if let Some(ms) = flag_value::<u64>(args, "--probe-interval-ms")? {
                config.probe_interval = Duration::from_millis(ms);
            }
            // Router-side result cache in front of scatter-gather (0 = off).
            if let Some(cache) = flag_value(args, "--cache-size")? {
                config.cache_capacity = cache;
            }
            config.metrics_enabled = !args.iter().any(|a| a == "--no-metrics");
            config.registry = Some(wcsd_obs::global().clone());
            let (vertices, boundary, edges) =
                (overlay.num_vertices(), overlay.num_boundary(), overlay.num_edges());
            let groups = parse_backend_groups(backends, overlay.num_shards())?;
            let replicas: usize = groups.iter().map(Vec::len).sum();
            let router = Router::bind(overlay, groups, config)
                .map_err(|e| format!("cannot bind router: {e}"))?;
            println!(
                "wcsd-router listening on {} ({} vertices across {} shard(s) / {} replica(s), \
                 {} boundary vertices, {} overlay edges)",
                router.local_addr(),
                vertices,
                backends.len(),
                replicas,
                boundary,
                edges
            );
            let summary = router.run();
            println!(
                "shut down after {} connections, {} queries, {} batches ({} batched queries)",
                summary.connections, summary.queries, summary.batches, summary.batch_queries
            );
            Ok(())
        }
        Some("feed") => {
            let [_, graph_path, updates_path, snapshot_dir] = positional[..] else {
                return Err("feed requires <graph-file> <updates-file> <snapshot-dir>".to_string());
            };
            let graph = read_graph_file(graph_path, use_dimacs)?;
            let text = std::fs::read_to_string(updates_path)
                .map_err(|e| format!("cannot read {updates_path}: {e}"))?;
            let updates = wcsd_bench::freshness::parse_update_stream(&text)?;
            let threads: usize = flag_value(args, "--threads")?.unwrap_or(1);
            let start = std::time::Instant::now();
            let builder = IndexBuilder::new().ordering(ordering).threads(threads);
            let mut dyn_idx = wcsd::core::dynamic::DynamicWcIndex::new(&graph, builder);
            if let Some(threshold) = flag_value::<f64>(args, "--repair-threshold")? {
                dyn_idx.set_repair_threshold(threshold);
            }
            println!(
                "built initial index for {} vertices / {} edges in {:.2?}; feeding {} updates",
                graph.num_vertices(),
                graph.num_edges(),
                start.elapsed(),
                updates.len()
            );
            let config = wcsd_bench::freshness::FeedConfig {
                batch_size: flag_value(args, "--batch")?.unwrap_or(16),
                addr: flag_value(args, "--addr")?,
                connect_timeout: Duration::from_secs(10),
            };
            let dataset = std::path::Path::new(graph_path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or(graph_path);
            let (result, snapshots) = wcsd_bench::freshness::run_feed(
                dataset,
                &mut dyn_idx,
                &updates,
                std::path::Path::new(snapshot_dir),
                &config,
            )?;
            println!("{}", wcsd_bench::freshness::summary(&result));
            if let Some(last) = snapshots.last() {
                println!(
                    "{} snapshot(s) in {snapshot_dir}, latest {}",
                    snapshots.len(),
                    last.display()
                );
            }
            if let Some(json_path) = flag_value::<String>(args, "--json")? {
                std::fs::write(&json_path, wcsd_bench::report::to_json(&[result]))
                    .map_err(|e| format!("cannot write {json_path}: {e}"))?;
                println!("wrote JSON record -> {json_path}");
            }
            Ok(())
        }
        _ => Err("missing or unknown subcommand".to_string()),
    }
}

/// Parses `route`'s backend-group arguments into per-shard replica groups.
///
/// Each argument is either `host:port[,host:port...]` — assigned to shards
/// in positional order, skipping shards already pinned — or
/// `shard<N>=host:port[,host:port...]`, pinned to shard `N` regardless of
/// argument order. Every shard must end up with exactly one group.
fn parse_backend_groups(
    backends: &[&String],
    num_shards: usize,
) -> Result<Vec<Vec<String>>, String> {
    let mut groups: Vec<Option<Vec<String>>> = vec![None; num_shards];
    let mut cursor = 0usize;
    for arg in backends {
        let (slot, list) = match arg.split_once('=') {
            Some((key, list)) => {
                let n: usize =
                    key.strip_prefix("shard").and_then(|n| n.parse().ok()).ok_or_else(|| {
                        format!("bad backend group {arg:?}: expected shard<N>=host:port[,...]")
                    })?;
                if n >= num_shards {
                    return Err(format!(
                        "backend group {arg:?}: shard {n} out of range for {num_shards} shard(s)"
                    ));
                }
                (n, list)
            }
            None => {
                while cursor < num_shards && groups[cursor].is_some() {
                    cursor += 1;
                }
                if cursor >= num_shards {
                    return Err(format!(
                        "backend group {arg:?} has no shard left to serve \
                         (overlay has {num_shards} shard(s))"
                    ));
                }
                (cursor, arg.as_str())
            }
        };
        if groups[slot].is_some() {
            return Err(format!("shard {slot} was given two backend groups"));
        }
        let replicas: Vec<String> = list.split(',').map(|a| a.trim().to_string()).collect();
        if replicas.iter().any(String::is_empty) {
            return Err(format!("backend group {arg:?} contains an empty address"));
        }
        groups[slot] = Some(replicas);
    }
    groups
        .into_iter()
        .enumerate()
        .map(|(shard, g)| g.ok_or_else(|| format!("no backend group for shard {shard}")))
        .collect()
}

/// `stats <host:port>`: fetches a running server's counter snapshot and
/// prints it human-readably, or — with `--json` — as one JSON object (the
/// field names match the `STATS` wire keys).
fn server_stats(addr: &str, json: bool) -> Result<(), String> {
    let mut client = Client::connect_retry(addr, Duration::from_secs(5))
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let s = client.stats()?;
    if json {
        let fields: [(&str, String); 15] = [
            ("vertices", s.vertices.to_string()),
            ("entries", s.entries.to_string()),
            ("generation", s.generation.to_string()),
            ("uptime_ms", s.uptime_ms.to_string()),
            ("connections", s.connections.to_string()),
            ("live_connections", s.live_connections.to_string()),
            ("text_connections", s.text_connections.to_string()),
            ("binary_connections", s.binary_connections.to_string()),
            ("reloads", s.reloads.to_string()),
            ("queries", s.queries.to_string()),
            ("batches", s.batches.to_string()),
            ("batch_queries", s.batch_queries.to_string()),
            ("shed", s.shed.to_string()),
            ("cache_hits", s.cache_hits.to_string()),
            ("cache_misses", s.cache_misses.to_string()),
        ];
        let body: Vec<String> = fields.iter().map(|(k, v)| format!("  \"{k}\": {v}")).collect();
        println!("{{\n{}\n}}", body.join(",\n"));
    } else {
        println!(
            "serving:             generation {} ({} vertices, {} entries)",
            s.generation, s.vertices, s.entries
        );
        println!("uptime:              {:.1}s", s.uptime_ms as f64 / 1e3);
        println!(
            "connections:         {} total ({} live, {} text, {} binary)",
            s.connections, s.live_connections, s.text_connections, s.binary_connections
        );
        println!("queries:             {}", s.queries);
        println!("batches:             {} ({} batched queries)", s.batches, s.batch_queries);
        println!("shed:                {}", s.shed);
        println!("reloads:             {}", s.reloads);
        println!(
            "cache:               {} hits / {} misses ({:.1}% hit rate)",
            s.cache_hits,
            s.cache_misses,
            100.0 * s.hit_rate()
        );
    }
    Ok(())
}

/// Parses `--impl` into a [`QueryImpl`] (`None` when the flag is absent, so
/// callers keep their own default).
fn parse_impl(args: &[String]) -> Result<Option<QueryImpl>, String> {
    match args.iter().position(|a| a == "--impl") {
        None => Ok(None),
        Some(i) => match args.get(i + 1).map(|s| s.as_str()) {
            Some("pair") => Ok(Some(QueryImpl::PairScan)),
            Some("bucket") => Ok(Some(QueryImpl::HubBucket)),
            Some("merge") => Ok(Some(QueryImpl::Merge)),
            Some("chunked") => Ok(Some(QueryImpl::Chunked)),
            other => {
                Err(format!("unknown query impl {other:?} (expected pair|bucket|merge|chunked)"))
            }
        },
    }
}

fn parse_ordering(args: &[String]) -> Result<OrderingStrategy, String> {
    match args.iter().position(|a| a == "--ordering") {
        None => Ok(OrderingStrategy::Hybrid),
        Some(i) => match args.get(i + 1).map(|s| s.as_str()) {
            Some("degree") => Ok(OrderingStrategy::Degree),
            Some("tree") => Ok(OrderingStrategy::TreeDecomposition),
            Some("hybrid") => Ok(OrderingStrategy::Hybrid),
            other => Err(format!("unknown ordering {other:?} (expected degree|tree|hybrid)")),
        },
    }
}

/// An index snapshot loaded from either on-disk format.
enum LoadedIndex {
    /// The nested `WCIX` build representation.
    Nested(WcIndex),
    /// The flat `WCIF` serve representation.
    Flat(FlatIndex),
}

impl LoadedIndex {
    fn num_vertices(&self) -> usize {
        match self {
            Self::Nested(i) => i.num_vertices(),
            Self::Flat(f) => f.num_vertices(),
        }
    }

    fn distance_with(&self, s: VertexId, t: VertexId, w: Quality, imp: QueryImpl) -> Option<u32> {
        match self {
            Self::Nested(i) => i.distance_with(s, t, w, imp),
            Self::Flat(f) => f.distance_with(s, t, w, imp),
        }
    }

    /// The frozen serve representation, converting a nested snapshot once.
    fn into_flat(self) -> FlatIndex {
        match self {
            Self::Nested(i) => FlatIndex::from_index(&i),
            Self::Flat(f) => f,
        }
    }
}

/// Loads an index snapshot — `WCIX` (nested) or `WCIF` (flat), detected from
/// the magic — and checks it matches the loaded graph.
fn load_index(path: &str, graph: &Graph) -> Result<LoadedIndex, String> {
    let data = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let index = if data.starts_with(wcsd::core::flat::WCIF_MAGIC) {
        LoadedIndex::Flat(FlatIndex::decode(&data).map_err(|e| format!("corrupt index: {e}"))?)
    } else {
        LoadedIndex::Nested(WcIndex::decode(&data).map_err(|e| format!("corrupt index: {e}"))?)
    };
    if index.num_vertices() != graph.num_vertices() {
        return Err(format!(
            "index covers {} vertices but the graph has {}",
            index.num_vertices(),
            graph.num_vertices()
        ));
    }
    Ok(index)
}
