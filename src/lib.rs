//! # wcsd — quality constrained shortest distance queries
//!
//! Umbrella crate re-exporting the whole workspace behind one dependency:
//! the graph substrate ([`graph`]), vertex orderings ([`order`]), the
//! WC-INDEX core ([`core`]), the baselines ([`baselines`]) and the
//! concurrent query service ([`server`]).
//!
//! See the individual crates for detailed documentation, `README.md` for a
//! guided tour, and the `examples/` directory for runnable scenarios.
//!
//! ```
//! use wcsd::prelude::*;
//!
//! let graph = wcsd::graph::generators::paper_figure3();
//! let index = IndexBuilder::wc_index_plus().build(&graph);
//! assert_eq!(index.distance(2, 5, 2), Some(2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use wcsd_baselines as baselines;
pub use wcsd_core as core;
pub use wcsd_graph as graph;
pub use wcsd_order as order;
pub use wcsd_server as server;

/// Commonly used types, importable with a single `use wcsd::prelude::*`.
pub mod prelude {
    pub use wcsd_baselines::DistanceAlgorithm;
    pub use wcsd_core::{
        ConstructionMode, FlatIndex, FlatView, IndexBuilder, OverlayIndex, QueryEngine, QueryImpl,
        ShardedIndex, WcIndex,
    };
    pub use wcsd_graph::{Graph, GraphBuilder, Partition, Quality, QualityDomain, VertexId};
    pub use wcsd_order::OrderingStrategy;
    pub use wcsd_server::{Client, Protocol, Router, RouterConfig, Server, ServerConfig};
}
