//! Property-based tests (proptest) for the core invariants of the system:
//!
//! * the index answers every query exactly like the online constrained BFS
//!   oracle (soundness + completeness, Theorem 1/2);
//! * no label entry is dominated by another entry of the same hub
//!   (minimality, Theorem 1);
//! * within one hub group, distance and quality are both strictly increasing
//!   (Theorem 3);
//! * reconstructed paths are valid `w`-paths of exactly the reported length;
//! * graph snapshots and builders are lossless.

use proptest::prelude::*;
use wcsd::prelude::*;
use wcsd_baselines::online::constrained_bfs;
use wcsd_core::path::PathIndex;
use wcsd_graph::Graph;

/// Strategy: a random graph given as (vertex count, edge list with qualities).
fn arb_graph(max_n: usize, max_edges: usize, max_q: u32) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec(
            (0..n as u32, 0..n as u32, 1..=max_q),
            0..=max_edges,
        )
        .prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v, q) in edges {
                b.add_edge(u, v, q);
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The index agrees with the BFS oracle on every vertex pair and level.
    #[test]
    fn index_matches_oracle(g in arb_graph(28, 90, 5)) {
        let idx = IndexBuilder::wc_index_plus().build(&g);
        let levels = g.distinct_qualities();
        for s in 0..g.num_vertices() as u32 {
            for t in 0..g.num_vertices() as u32 {
                for &w in &levels {
                    prop_assert_eq!(idx.distance(s, t, w), constrained_bfs(&g, s, t, w));
                }
                // A constraint stricter than every edge is satisfiable only
                // for s == t.
                let too_strict = levels.last().copied().unwrap_or(1) + 1;
                let expected = (s == t).then_some(0);
                prop_assert_eq!(idx.distance(s, t, too_strict), expected);
            }
        }
    }

    /// Minimality: no entry is dominated by another entry of the same hub, in
    /// any label set, for any ordering strategy.
    #[test]
    fn index_is_minimal(g in arb_graph(24, 70, 4), use_degree in any::<bool>()) {
        let strat = if use_degree { OrderingStrategy::Degree } else { OrderingStrategy::Hybrid };
        let idx = IndexBuilder::new().ordering(strat).build(&g);
        prop_assert!(idx.dominated_entries().is_empty());
    }

    /// Theorem 3: within one vertex's entries for one hub, distances and
    /// qualities are strictly co-monotone.
    #[test]
    fn theorem3_label_ordering(g in arb_graph(24, 70, 5)) {
        let idx = IndexBuilder::wc_index_plus().build(&g);
        for v in 0..g.num_vertices() as u32 {
            for (_, group) in idx.labels(v).hub_groups() {
                for pair in group.windows(2) {
                    prop_assert!(pair[0].dist < pair[1].dist);
                    prop_assert!(pair[0].quality < pair[1].quality);
                }
            }
        }
    }

    /// All three query implementations return identical answers.
    #[test]
    fn query_implementations_agree(g in arb_graph(20, 60, 4)) {
        let idx = IndexBuilder::wc_index_plus().build(&g);
        let levels = g.distinct_qualities();
        for s in 0..g.num_vertices() as u32 {
            for t in 0..g.num_vertices() as u32 {
                for &w in &levels {
                    let a = idx.distance_with(s, t, w, QueryImpl::PairScan);
                    let b = idx.distance_with(s, t, w, QueryImpl::HubBucket);
                    let c = idx.distance_with(s, t, w, QueryImpl::Merge);
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(b, c);
                }
            }
        }
    }

    /// Reconstructed paths are valid w-paths of exactly the reported length.
    #[test]
    fn paths_are_valid(g in arb_graph(20, 55, 4)) {
        let pidx = PathIndex::build(&g);
        let levels = g.distinct_qualities();
        for s in 0..g.num_vertices() as u32 {
            for t in 0..g.num_vertices() as u32 {
                for &w in &levels {
                    match (constrained_bfs(&g, s, t, w), pidx.shortest_path(s, t, w)) {
                        (None, p) => prop_assert!(p.is_none()),
                        (Some(d), Some(path)) => {
                            prop_assert_eq!(path.len() as u32 - 1, d);
                            prop_assert_eq!(*path.first().unwrap(), s);
                            prop_assert_eq!(*path.last().unwrap(), t);
                            for pair in path.windows(2) {
                                let q = g.edge_quality(pair[0], pair[1]);
                                prop_assert!(q.is_some());
                                prop_assert!(q.unwrap() >= w);
                            }
                        }
                        (Some(_), None) => prop_assert!(false, "path missing"),
                    }
                }
            }
        }
    }

    /// Monotonicity in the constraint: strengthening w never shortens the
    /// distance, and weakening it never lengthens it.
    #[test]
    fn distance_is_monotone_in_constraint(g in arb_graph(24, 70, 5)) {
        let idx = IndexBuilder::wc_index_plus().build(&g);
        for s in 0..g.num_vertices() as u32 {
            for t in 0..g.num_vertices() as u32 {
                let mut prev: Option<u32> = Some(0);
                let mut prev_reachable = true;
                for w in 1..=5u32 {
                    let d = idx.distance(s, t, w);
                    if let (Some(p), Some(cur)) = (prev, d) {
                        prop_assert!(cur >= p, "Q({s},{t},{w}) shrank from {p} to {cur}");
                    }
                    // Once unreachable, stricter constraints stay unreachable.
                    if !prev_reachable {
                        prop_assert!(d.is_none());
                    }
                    prev_reachable = d.is_some();
                    prev = d.or(prev);
                }
            }
        }
    }

    /// Graph snapshot encode/decode is lossless.
    #[test]
    fn snapshot_roundtrip(g in arb_graph(30, 120, 6)) {
        let bytes = wcsd::graph::io::snapshot::encode(&g);
        let decoded = wcsd::graph::io::snapshot::decode(&bytes).unwrap();
        prop_assert_eq!(g, decoded);
    }

    /// The builder collapses parallel edges to the maximum quality and the
    /// resulting adjacency is symmetric.
    #[test]
    fn builder_invariants(edges in proptest::collection::vec((0u32..15, 0u32..15, 1u32..6), 0..80)) {
        let mut b = GraphBuilder::new(15);
        for (u, v, q) in &edges {
            b.add_edge(*u, *v, *q);
        }
        let g = b.build();
        prop_assert_eq!(g.num_vertices(), 15);
        for e in g.edges() {
            // Symmetry.
            prop_assert_eq!(g.edge_quality(e.v, e.u), Some(e.quality));
            // Max-quality merge.
            let best = edges
                .iter()
                .filter(|(u, v, _)| (*u == e.u && *v == e.v) || (*u == e.v && *v == e.u))
                .map(|(_, _, q)| *q)
                .max();
            prop_assert_eq!(best, Some(e.quality));
        }
    }
}
