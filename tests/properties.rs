//! Property-style tests for the core invariants of the system, driven by a
//! seeded random-graph fuzzer (a registry-free stand-in for proptest):
//!
//! * the index answers every query exactly like the online constrained BFS
//!   oracle (soundness + completeness, Theorem 1/2);
//! * no label entry is dominated by another entry of the same hub
//!   (minimality, Theorem 1);
//! * within one hub group, distance and quality are both strictly increasing
//!   (Theorem 3);
//! * all three query implementations agree;
//! * reconstructed paths are valid `w`-paths of exactly the reported length;
//! * distance is monotonically non-decreasing in the constraint `w`;
//! * `index.within(s, t, w, d)` agrees with `distance` on all sampled triples;
//! * graph snapshots and builders are lossless.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wcsd::prelude::*;
use wcsd_baselines::online::constrained_bfs;
use wcsd_core::dynamic::DynamicWcIndex;
use wcsd_core::path::PathIndex;
use wcsd_graph::Graph;

/// Number of random graphs each property is checked against.
const CASES: u64 = 48;

/// Deterministic random graph: up to `max_n` vertices, up to `max_edges`
/// edge insertions (self loops and duplicates included, exercising the
/// builder's cleanup paths), qualities in `1..=max_q`.
fn random_graph(seed: u64, max_n: usize, max_edges: usize, max_q: u32) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) ^ 0x00C0_FFEE);
    let n = rng.gen_range(2..=max_n);
    let m = rng.gen_range(0..=max_edges);
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        let q = rng.gen_range(1..=max_q);
        b.add_edge(u, v, q);
    }
    b.build()
}

/// The index agrees with the BFS oracle on every vertex pair and level.
#[test]
fn index_matches_oracle() {
    for seed in 0..CASES {
        let g = random_graph(seed, 28, 90, 5);
        let idx = IndexBuilder::wc_index_plus().build(&g);
        let levels = g.distinct_qualities();
        for s in 0..g.num_vertices() as u32 {
            for t in 0..g.num_vertices() as u32 {
                for &w in &levels {
                    assert_eq!(
                        idx.distance(s, t, w),
                        constrained_bfs(&g, s, t, w),
                        "seed {seed}: Q({s},{t},{w})"
                    );
                }
                // A constraint stricter than every edge is satisfiable only
                // for s == t.
                let too_strict = levels.last().copied().unwrap_or(1) + 1;
                let expected = (s == t).then_some(0);
                assert_eq!(idx.distance(s, t, too_strict), expected, "seed {seed}");
            }
        }
    }
}

/// Minimality: no entry is dominated by another entry of the same hub, in
/// any label set, for any ordering strategy.
#[test]
fn index_is_minimal() {
    for seed in 0..CASES {
        let g = random_graph(seed, 24, 70, 4);
        let strat = if seed % 2 == 0 { OrderingStrategy::Degree } else { OrderingStrategy::Hybrid };
        let idx = IndexBuilder::new().ordering(strat).build(&g);
        assert!(
            idx.dominated_entries().is_empty(),
            "seed {seed}: dominated entries under {:?}",
            strat
        );
    }
}

/// Theorem 3: within one vertex's entries for one hub, distances and
/// qualities are strictly co-monotone.
#[test]
fn theorem3_label_ordering() {
    for seed in 0..CASES {
        let g = random_graph(seed, 24, 70, 5);
        let idx = IndexBuilder::wc_index_plus().build(&g);
        for v in 0..g.num_vertices() as u32 {
            for (hub, group) in idx.labels(v).hub_groups() {
                for pair in group.windows(2) {
                    assert!(pair[0].dist < pair[1].dist, "seed {seed}: L(v{v})[{hub}]");
                    assert!(pair[0].quality < pair[1].quality, "seed {seed}: L(v{v})[{hub}]");
                }
            }
        }
    }
}

/// All three query implementations return identical answers.
#[test]
fn query_implementations_agree() {
    for seed in 0..CASES {
        let g = random_graph(seed, 20, 60, 4);
        let idx = IndexBuilder::wc_index_plus().build(&g);
        let levels = g.distinct_qualities();
        for s in 0..g.num_vertices() as u32 {
            for t in 0..g.num_vertices() as u32 {
                for &w in &levels {
                    let a = idx.distance_with(s, t, w, QueryImpl::PairScan);
                    let b = idx.distance_with(s, t, w, QueryImpl::HubBucket);
                    let c = idx.distance_with(s, t, w, QueryImpl::Merge);
                    assert_eq!(a, b, "seed {seed}: Q({s},{t},{w})");
                    assert_eq!(b, c, "seed {seed}: Q({s},{t},{w})");
                }
            }
        }
    }
}

/// Reconstructed paths are valid w-paths of exactly the reported length.
#[test]
fn paths_are_valid() {
    for seed in 0..CASES {
        let g = random_graph(seed, 20, 55, 4);
        let pidx = PathIndex::build(&g);
        let levels = g.distinct_qualities();
        for s in 0..g.num_vertices() as u32 {
            for t in 0..g.num_vertices() as u32 {
                for &w in &levels {
                    match (constrained_bfs(&g, s, t, w), pidx.shortest_path(s, t, w)) {
                        (None, p) => {
                            assert!(p.is_none(), "seed {seed}: phantom path Q({s},{t},{w})")
                        }
                        (Some(d), Some(path)) => {
                            assert_eq!(path.len() as u32 - 1, d, "seed {seed}: Q({s},{t},{w})");
                            assert_eq!(*path.first().unwrap(), s);
                            assert_eq!(*path.last().unwrap(), t);
                            for pair in path.windows(2) {
                                let q = g.edge_quality(pair[0], pair[1]);
                                assert!(
                                    q.is_some_and(|q| q >= w),
                                    "seed {seed}: Q({s},{t},{w}) has invalid edge {pair:?}"
                                );
                            }
                        }
                        (Some(_), None) => panic!("seed {seed}: path missing for Q({s},{t},{w})"),
                    }
                }
            }
        }
    }
}

/// Monotonicity in the constraint: strengthening w never shortens the
/// distance, and once a pair becomes unreachable it stays unreachable.
#[test]
fn distance_is_monotone_in_constraint() {
    for seed in 0..CASES {
        let g = random_graph(seed, 24, 70, 5);
        let idx = IndexBuilder::wc_index_plus().build(&g);
        for s in 0..g.num_vertices() as u32 {
            for t in 0..g.num_vertices() as u32 {
                let mut prev: Option<u32> = Some(0);
                let mut prev_reachable = true;
                for w in 1..=5u32 {
                    let d = idx.distance(s, t, w);
                    if let (Some(p), Some(cur)) = (prev, d) {
                        assert!(cur >= p, "seed {seed}: Q({s},{t},{w}) shrank from {p} to {cur}");
                    }
                    if !prev_reachable {
                        assert!(d.is_none(), "seed {seed}: Q({s},{t},{w}) became reachable");
                    }
                    prev_reachable = d.is_some();
                    prev = d.or(prev);
                }
            }
        }
    }
}

/// `within(s, t, w, d)` is exactly `distance(s, t, w) <= d`: true for every
/// bound at or above the distance, false below it, false for unreachable
/// pairs at any bound.
#[test]
fn within_agrees_with_distance() {
    for seed in 0..CASES {
        let g = random_graph(seed, 22, 66, 4);
        let idx = IndexBuilder::wc_index_plus().build(&g);
        let levels = g.distinct_qualities();
        for s in 0..g.num_vertices() as u32 {
            for t in 0..g.num_vertices() as u32 {
                for &w in &levels {
                    match idx.distance(s, t, w) {
                        Some(d) => {
                            assert!(idx.within(s, t, w, d), "seed {seed}: Q({s},{t},{w}) d={d}");
                            assert!(idx.within(s, t, w, d + 1));
                            assert!(idx.within(s, t, w, u32::MAX));
                            if d > 0 {
                                assert!(
                                    !idx.within(s, t, w, d - 1),
                                    "seed {seed}: Q({s},{t},{w}) within bound {} too loose",
                                    d - 1
                                );
                            }
                        }
                        None => {
                            assert!(
                                !idx.within(s, t, w, u32::MAX),
                                "seed {seed}: unreachable Q({s},{t},{w}) claimed within"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Random mixed insert/delete sequences: the decremental repair never falls
/// back to a rebuild (threshold 1.0), and afterwards every query
/// implementation agrees with a from-scratch rebuild under the same vertex
/// order *and* with the BFS oracle.
#[test]
fn dynamic_mixed_updates_match_rebuild() {
    for seed in 0..CASES {
        let g = random_graph(seed, 18, 50, 4);
        let mut dyn_idx = DynamicWcIndex::new(&g, IndexBuilder::wc_index_plus());
        dyn_idx.set_repair_threshold(1.0);
        let order = dyn_idx.index().order().clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE_D1CE);
        let n = g.num_vertices() as u32;
        for _ in 0..10 {
            if rng.gen_bool(0.5) {
                dyn_idx.insert_edge(rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(1..5));
            } else {
                let edges: Vec<_> = dyn_idx.graph().edges().collect();
                if let Some(e) = edges.get(rng.gen_range(0..edges.len().max(1))) {
                    dyn_idx.remove_edge(e.u, e.v);
                } else {
                    // Empty graph: deleting a non-edge must be a no-op.
                    assert!(!dyn_idx.remove_edge(0, 1.min(n - 1)));
                }
            }
        }
        assert_eq!(dyn_idx.rebuild_count(), 0, "seed {seed}: repair must never rebuild");

        let rebuilt = IndexBuilder::wc_index_plus().build_with_order(dyn_idx.graph(), order);
        let levels = dyn_idx.graph().distinct_qualities();
        for s in 0..n {
            for t in 0..n {
                for &w in &levels {
                    let oracle = constrained_bfs(dyn_idx.graph(), s, t, w);
                    assert_eq!(rebuilt.distance(s, t, w), oracle, "seed {seed}: Q({s},{t},{w})");
                    for imp in [QueryImpl::PairScan, QueryImpl::HubBucket, QueryImpl::Merge] {
                        assert_eq!(
                            dyn_idx.index().distance_with(s, t, w, imp),
                            oracle,
                            "seed {seed}: repaired {imp:?} Q({s},{t},{w})"
                        );
                    }
                }
            }
        }
    }
}

/// Delete-only sequences leave labels bit-identical to a fresh build under
/// the same vertex order, and every repair invalidates the frozen snapshot.
#[test]
fn dynamic_deletions_are_bit_identical_and_invalidate_freeze() {
    for seed in 0..CASES {
        let g = random_graph(seed, 18, 55, 4);
        let mut dyn_idx = DynamicWcIndex::new(&g, IndexBuilder::wc_index_plus());
        dyn_idx.set_repair_threshold(1.0);
        let order = dyn_idx.index().order().clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DE1_E7ED);
        for _ in 0..4 {
            let edges: Vec<_> = dyn_idx.graph().edges().collect();
            if edges.is_empty() {
                break;
            }
            let e = edges[rng.gen_range(0..edges.len())];
            let frozen = dyn_idx.freeze();
            assert!(dyn_idx.remove_edge(e.u, e.v), "seed {seed}: edge existed");
            let refrozen = dyn_idx.freeze();
            assert!(
                !std::sync::Arc::ptr_eq(&frozen, &refrozen),
                "seed {seed}: repair must invalidate the frozen snapshot"
            );
            // The re-frozen snapshot answers exactly like the live index.
            let w = rng.gen_range(1..5);
            assert_eq!(refrozen.distance(e.u, e.v, w), dyn_idx.distance(e.u, e.v, w));
        }
        assert_eq!(dyn_idx.rebuild_count(), 0, "seed {seed}");
        let fresh = IndexBuilder::wc_index_plus().build_with_order(dyn_idx.graph(), order);
        for v in 0..dyn_idx.graph().num_vertices() as u32 {
            assert_eq!(
                dyn_idx.index().labels(v),
                fresh.labels(v),
                "seed {seed}: L(v{v}) diverged from the fresh build"
            );
        }
    }
}

/// Graph snapshot encode/decode is lossless.
#[test]
fn snapshot_roundtrip() {
    for seed in 0..CASES {
        let g = random_graph(seed, 30, 120, 6);
        let bytes = wcsd::graph::io::snapshot::encode(&g);
        let decoded = wcsd::graph::io::snapshot::decode(&bytes).unwrap();
        assert_eq!(g, decoded, "seed {seed}");
    }
}

/// The builder collapses parallel edges to the maximum quality and the
/// resulting adjacency is symmetric.
#[test]
fn builder_invariants() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0B11_1DE5);
        let m = rng.gen_range(0..80usize);
        let edges: Vec<(u32, u32, u32)> = (0..m)
            .map(|_| (rng.gen_range(0..15u32), rng.gen_range(0..15u32), rng.gen_range(1..6u32)))
            .collect();
        let mut b = GraphBuilder::new(15);
        for &(u, v, q) in &edges {
            b.add_edge(u, v, q);
        }
        let g = b.build();
        assert_eq!(g.num_vertices(), 15);
        for e in g.edges() {
            // Symmetry.
            assert_eq!(g.edge_quality(e.v, e.u), Some(e.quality), "seed {seed}");
            // Max-quality merge.
            let best = edges
                .iter()
                .filter(|(u, v, _)| (*u == e.u && *v == e.v) || (*u == e.v && *v == e.u))
                .map(|(_, _, q)| *q)
                .max();
            assert_eq!(best, Some(e.quality), "seed {seed}");
        }
    }
}
