//! Cross-shard parity suite for the sharded serving tier: the partitioned
//! index composed through the boundary overlay must be **bit-identical** to
//! the unsharded index, in process and over the wire.
//!
//! * a seeded fuzz sweep (48 seeds × {road, social} shapes × all four
//!   query implementations) comparing [`ShardedIndex`] against a full
//!   [`FlatIndex`] for `QUERY`, `BATCH`, and `WITHIN` — including
//!   unreachable pairs, `s == t`, and out-of-range quality constraints;
//! * an exhaustive small-graph sweep pinning both against the online
//!   constrained-BFS oracle (ground truth, not just mutual agreement);
//! * an end-to-end TCP test: two real backend reactors plus the
//!   scatter-gather router, checked for wire parity on both protocols and
//!   for identical `ERR` wording against a direct (unsharded) server;
//! * a fault-injection test: one backend is killed mid-workload and the
//!   router must degrade to `ERR` within the backend timeout, keep serving
//!   queries that avoid the dead shard, report the degradation through
//!   `METRICS`, and never emit a torn (partial) batch reply;
//! * a result-cache test: repeated workloads are served from router memory
//!   with zero additional backend fan-out, bit-identically, with hits
//!   reported consistently through `STATS` and `METRICS`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wcsd::prelude::*;
use wcsd_baselines::online::constrained_bfs;
use wcsd_graph::generators::{barabasi_albert, road_grid, QualityAssigner, RoadGridConfig};
use wcsd_graph::{Distance, Graph};

/// Number of seeds per graph shape in the fuzz sweep (matches the
/// property-test convention in `tests/properties.rs`).
const CASES: u64 = 48;

const IMPLS: [QueryImpl; 4] =
    [QueryImpl::PairScan, QueryImpl::HubBucket, QueryImpl::Merge, QueryImpl::Chunked];

/// A road-network-like shard workload: grids partition along geography, so
/// the cut is small and most pairs cross it.
fn road(seed: u64) -> Graph {
    road_grid(&RoadGridConfig::square(6), &QualityAssigner::uniform(4), seed)
}

/// A scale-free shard workload: hubs end up on the boundary, so the overlay
/// profile carries many alternative (distance, quality) steps.
fn social(seed: u64) -> Graph {
    barabasi_albert(36, 2, &QualityAssigner::uniform(5), seed)
}

/// Full unsharded reference index over `g`.
fn full_flat(g: &Graph) -> FlatIndex {
    FlatIndex::from_index(&IndexBuilder::wc_index_plus().build(g))
}

/// The fuzz sweep: for every seed and shape, a sharded index over a 2–4-way
/// partition answers exactly like the unsharded index under all four query
/// implementations.
#[test]
fn sharded_matches_unsharded_fuzz() {
    for seed in 0..CASES {
        for (shape, g) in [("road", road(seed)), ("social", social(seed))] {
            let shards = 2 + (seed % 3) as usize;
            let partition = Partition::build(&g, shards, seed);
            let sharded = ShardedIndex::build(&g, &partition);
            let flat = full_flat(&g);
            let n = g.num_vertices() as u32;
            let max_q = g.distinct_qualities().last().copied().unwrap_or(1);

            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) ^ 0x5bad_c0de_u64);
            let mut triples: Vec<(u32, u32, u32)> = (0..40)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(1..=max_q + 1)))
                .collect();
            // Targeted edge cases: the reflexive pair under an unsatisfiable
            // constraint (must stay Some(0)), a constraint above every edge
            // quality, and the extreme-corner pair (unreachable on grids
            // with removed edges).
            triples.push((0, 0, max_q + 5));
            triples.push((n - 1, n - 1, max_q + 5));
            triples.push((0, n - 1, max_q + 3));
            triples.push((0, n - 1, 1));

            for &(s, t, w) in &triples {
                let expect = flat.distance_with(s, t, w, QueryImpl::Merge);
                for imp in IMPLS {
                    assert_eq!(
                        sharded.distance_with(s, t, w, imp),
                        expect,
                        "{shape} seed {seed} shards {shards}: Q({s},{t},{w}) via {imp:?}"
                    );
                }
                // WITHIN must agree with the composed distance on both
                // sides of the threshold.
                for d in [0, 1, expect.unwrap_or(2).saturating_sub(1), expect.unwrap_or(7)] {
                    assert_eq!(
                        sharded.within(s, t, w, d),
                        expect.is_some_and(|found| found <= d),
                        "{shape} seed {seed}: WITHIN({s},{t},{w},{d})"
                    );
                }
            }
        }
    }
}

/// Exhaustive sweep on small random graphs (the builder-cleanup fuzzer shape
/// from `tests/properties.rs`): every pair, every level, pinned against the
/// online BFS oracle so sharded and unsharded cannot agree on a shared bug.
#[test]
fn sharded_matches_oracle_exhaustive() {
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) ^ 0x00C0_FFEE);
        let n = rng.gen_range(2..=16usize);
        let m = rng.gen_range(0..=40usize);
        let mut b = GraphBuilder::new(n);
        for _ in 0..m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            b.add_edge(u, v, rng.gen_range(1..=4u32));
        }
        let g = b.build();
        let partition = Partition::build(&g, 2, seed);
        let sharded = ShardedIndex::build(&g, &partition);
        let levels = g.distinct_qualities();
        for s in 0..n as u32 {
            for t in 0..n as u32 {
                for &w in levels.iter().chain([5].iter()) {
                    assert_eq!(
                        sharded.distance(s, t, w),
                        constrained_bfs(&g, s, t, w),
                        "seed {seed}: Q({s},{t},{w})"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end TCP: real backends, real router, both wire protocols.
// ---------------------------------------------------------------------------

struct Cluster {
    router_addr: String,
    backend_addrs: Vec<String>,
    router_handle: std::thread::JoinHandle<wcsd_server::ServerSnapshot>,
    backend_handles: Vec<std::thread::JoinHandle<wcsd_server::ServerSnapshot>>,
}

/// Partitions `g`, serves each shard on its own reactor, and fronts them
/// with a router on an ephemeral port. `cache_capacity` sizes the router's
/// result cache (0 = off, so every query provably fans out).
fn start_cluster(
    g: &Graph,
    shards: usize,
    seed: u64,
    backend_timeout: Duration,
    cache_capacity: usize,
) -> Cluster {
    let partition = Partition::build(g, shards, seed);
    let sharded = ShardedIndex::build(g, &partition);
    let mut backend_addrs = Vec::new();
    let mut backend_handles = Vec::new();
    for shard in sharded.shards() {
        let server =
            Server::bind_flat(Arc::clone(shard), ServerConfig::default()).expect("bind backend");
        backend_addrs.push(server.local_addr().to_string());
        backend_handles.push(std::thread::spawn(move || server.run()));
    }
    let config = RouterConfig { backend_timeout, cache_capacity, ..RouterConfig::default() };
    // One single-replica group per shard (the replica-failover tests build
    // their own multi-replica clusters).
    let groups: Vec<Vec<String>> = backend_addrs.iter().map(|a| vec![a.clone()]).collect();
    let router = Router::bind(sharded.overlay().clone(), groups, config).expect("bind router");
    let router_addr = router.local_addr().to_string();
    let router_handle = std::thread::spawn(move || router.run());
    Cluster { router_addr, backend_addrs, router_handle, backend_handles }
}

impl Cluster {
    /// Shuts the whole cluster down and returns the router's final counters.
    fn shutdown(self) -> wcsd_server::ServerSnapshot {
        let mut c = Client::connect(&self.router_addr).expect("connect router");
        c.shutdown().expect("router shutdown");
        let snapshot = self.router_handle.join().expect("router thread");
        for (addr, handle) in self.backend_addrs.iter().zip(self.backend_handles) {
            if let Ok(mut c) = Client::connect(addr) {
                let _ = c.shutdown();
            }
            let _ = handle.join();
        }
        snapshot
    }
}

/// Wire parity: queries, batches, and predicates through the router agree
/// bit-for-bit with a direct unsharded server, on both protocols, and error
/// replies carry identical wording.
#[test]
fn router_wire_parity_end_to_end() {
    let g = barabasi_albert(90, 3, &QualityAssigner::uniform(4), 23);
    let flat = full_flat(&g);
    // Default cache capacity: parity must hold whether an answer came from
    // scatter-gather or the router's result cache.
    let cluster = start_cluster(&g, 2, 3, Duration::from_secs(2), 64 * 1024);

    // A direct, unsharded server over the same graph: the oracle for both
    // answers and error wording.
    let direct = Server::bind(IndexBuilder::wc_index_plus().build(&g), ServerConfig::default())
        .expect("bind direct server");
    let direct_addr = direct.local_addr().to_string();
    let direct_handle = std::thread::spawn(move || direct.run());

    let n = g.num_vertices() as u32;
    for protocol in [Protocol::Text, Protocol::Binary] {
        let mut via_router =
            Client::connect_with(&cluster.router_addr, protocol).expect("connect router");
        let mut via_direct = Client::connect_with(&direct_addr, protocol).expect("connect direct");

        // Individual queries, including s == t and an unsatisfiable w.
        let mut rng = StdRng::seed_from_u64(0xd15_7a9c ^ protocol as u64);
        for _ in 0..25 {
            let (s, t, w) = (rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(1..=5));
            let got = via_router.query(s, t, w).expect("router query");
            assert_eq!(got, flat.distance_with(s, t, w, QueryImpl::Merge), "Q({s},{t},{w})");
            assert_eq!(got, via_direct.query(s, t, w).expect("direct query"));
        }
        assert_eq!(via_router.query(7, 7, 99).expect("reflexive"), Some(0));
        assert_eq!(via_router.query(0, 1, 99).expect("unsatisfiable"), None);

        // One BATCH round trip covering the same workload shape.
        let batch: Vec<(u32, u32, u32)> = (0..30)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(1..=5)))
            .collect();
        assert_eq!(
            via_router.batch(&batch).expect("router batch"),
            via_direct.batch(&batch).expect("direct batch"),
            "{protocol:?} batch parity"
        );

        // WITHIN parity on both sides of the threshold.
        for &(s, t, w) in batch.iter().take(8) {
            let d_ref: Option<Distance> = flat.distance_with(s, t, w, QueryImpl::Merge);
            for d in [0, d_ref.unwrap_or(3)] {
                assert_eq!(
                    via_router.within(s, t, w, d).expect("router within"),
                    via_direct.within(s, t, w, d).expect("direct within"),
                    "{protocol:?} WITHIN({s},{t},{w},{d})"
                );
            }
        }

        // Error wording parity: out-of-range vertices produce the exact
        // same ERR text through the router as from the unsharded server.
        assert_eq!(
            via_router.query(9_999, 0, 1).expect_err("out of range"),
            via_direct.query(9_999, 0, 1).expect_err("out of range"),
            "{protocol:?} out-of-range wording"
        );
        let poisoned = [(0u32, 1u32, 1u32), (n, 0, 1), (1, 2, 1)];
        assert_eq!(
            via_router.batch(&poisoned).expect_err("poisoned batch"),
            via_direct.batch(&poisoned).expect_err("poisoned batch"),
            "{protocol:?} batch-line wording"
        );
        // The failed batch must not desynchronise the connection: the next
        // request on the same socket still gets a correct answer.
        assert_eq!(
            via_router.query(0, 1, 1).expect("post-error query"),
            flat.distance_with(0, 1, 1, QueryImpl::Merge)
        );

        // STATS is well-formed and advertises the overlay generation.
        let stats = via_router.stats().expect("router stats");
        assert_eq!(stats.vertices, g.num_vertices());
        assert_eq!(stats.generation, 1);
    }

    let snapshot = cluster.shutdown();
    assert!(snapshot.queries >= 50, "router counted its queries: {}", snapshot.queries);
    assert!(snapshot.batches >= 2, "router counted its batches: {}", snapshot.batches);

    let mut c = Client::connect(&direct_addr).expect("connect direct");
    c.shutdown().expect("direct shutdown");
    direct_handle.join().expect("direct thread");
}

/// Fault injection: killing one backend mid-workload degrades affected
/// queries to `ERR` within the backend timeout (never a hang, never a torn
/// batch), leaves the router serving unaffected shards, and shows up in the
/// `METRICS` exposition as a degraded backend.
#[test]
fn router_fault_injection_degrades_without_hanging() {
    let g = barabasi_albert(60, 2, &QualityAssigner::uniform(4), 5);
    let flat = full_flat(&g);
    let partition = Partition::build(&g, 2, 7);
    // Cache off: the drill re-issues the healthy batch after the kill and
    // must observe the dead backend, not a cached answer.
    let cluster = start_cluster(&g, 2, 7, Duration::from_millis(500), 0);

    // Pick one pair entirely inside shard 0 and one pair crossing into
    // shard 1, so we can tell "partial service" from "dead router".
    let in_shard = |shard: u32| -> Vec<u32> {
        (0..g.num_vertices() as u32).filter(|&v| partition.shard_of(v) == shard).collect()
    };
    let shard0 = in_shard(0);
    let shard1 = in_shard(1);
    let (s0, t0) = (shard0[0], *shard0.last().unwrap());
    let cross = (shard0[0], shard1[0]);

    let mut client =
        Client::connect_with(&cluster.router_addr, Protocol::Binary).expect("connect router");
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Healthy baseline: a batch spanning both shards round-trips correctly.
    let batch: Vec<(u32, u32, u32)> =
        vec![(s0, t0, 1), (cross.0, cross.1, 1), (shard1[0], *shard1.last().unwrap(), 2)];
    let healthy = client.batch(&batch).expect("healthy batch");
    for (i, &(s, t, w)) in batch.iter().enumerate() {
        assert_eq!(healthy[i], flat.distance_with(s, t, w, QueryImpl::Merge));
    }

    // Kill backend 1 (clean SHUTDOWN, so its port closes immediately).
    let mut b1 = Client::connect(&cluster.backend_addrs[1]).expect("connect backend 1");
    b1.shutdown().expect("backend shutdown");

    // Affected traffic: ERR naming the dead backend, well under the
    // timeout-plus-retry budget, and the whole batch fails — the client
    // never sees a partial answer vector.
    let started = Instant::now();
    let err = client.batch(&batch).expect_err("batch through a dead shard");
    let elapsed = started.elapsed();
    assert!(err.contains("backend 1") && err.contains("unavailable"), "diagnostic: {err}");
    assert!(elapsed < Duration::from_secs(3), "degradation must not hang: took {elapsed:?}");
    let err = client.query(cross.0, cross.1, 1).expect_err("query through a dead shard");
    assert!(err.contains("unavailable"), "diagnostic: {err}");

    // Unaffected traffic on the same connection keeps working: a pair
    // wholly inside the surviving shard fans out to backend 0 only.
    assert_eq!(
        client.query(s0, t0, 1).expect("same-shard query survives"),
        flat.distance_with(s0, t0, 1, QueryImpl::Merge)
    );

    // The degradation is observable: the gauge reports one degraded
    // backend and at least one retry was attempted before giving up.
    let metrics = client.metrics(false).expect("router metrics");
    assert!(
        metrics.lines().any(|l| l.trim() == "wcsd_router_degraded_backends 1"),
        "degraded gauge missing:\n{metrics}"
    );
    let retries: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("wcsd_router_retries_total ")?.trim().parse().ok())
        .expect("retry counter present");
    assert!(retries >= 1, "expected at least one retry, saw {retries}");

    // A *fresh* connection is also served: the accept loop is alive.
    let mut fresh = Client::connect(&cluster.router_addr).expect("fresh connection");
    assert_eq!(
        fresh.query(s0, t0, 2).expect("fresh same-shard query"),
        flat.distance_with(s0, t0, 2, QueryImpl::Merge)
    );

    // Clean shutdown still works with a dead backend in the pool. The
    // counters only tally *answered* requests: the two same-shard queries
    // and the healthy batch, not the degraded ERR replies.
    let snapshot = cluster.shutdown();
    assert!(snapshot.queries >= 2, "answered queries: {}", snapshot.queries);
    assert!(snapshot.batches >= 1, "answered batches: {}", snapshot.batches);
}

/// The router-side result cache: a repeated workload is answered from router
/// memory with zero additional backend fan-out, hits surface in both `STATS`
/// and `METRICS` (same metric names the backends use), and the answers stay
/// bit-identical to the first, scattered, pass.
#[test]
fn router_result_cache_short_circuits_fanout() {
    let g = barabasi_albert(80, 2, &QualityAssigner::uniform(4), 41);
    let flat = full_flat(&g);
    let cluster = start_cluster(&g, 2, 11, Duration::from_secs(2), 4096);

    let n = g.num_vertices() as u32;
    let mut rng = StdRng::seed_from_u64(0xcac_4e11);
    let workload: Vec<(u32, u32, u32)> =
        (0..30).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(1..=5))).collect();

    let mut client =
        Client::connect_with(&cluster.router_addr, Protocol::Binary).expect("connect router");
    let first = client.batch(&workload).expect("first pass");
    for (i, &(s, t, w)) in workload.iter().enumerate() {
        assert_eq!(first[i], flat.distance_with(s, t, w, QueryImpl::Merge), "Q({s},{t},{w})");
    }

    let scrape_router = |c: &mut Client| {
        wcsd_obs::scrape::Scrape::parse(&c.metrics(false).expect("router metrics"))
    };
    let before = scrape_router(&mut client);
    let fanout_before = before.value("wcsd_router_fanout_total").expect("fanout counter");

    // Second pass: every (s, t, w) repeats, so the whole batch — and a few
    // standalone repeats — must be served without one more backend exchange.
    assert_eq!(client.batch(&workload).expect("cached pass"), first);
    for &(s, t, w) in workload.iter().take(5) {
        assert_eq!(
            client.query(s, t, w).expect("cached point query"),
            flat.distance_with(s, t, w, QueryImpl::Merge)
        );
    }

    let after = scrape_router(&mut client);
    assert_eq!(
        after.value("wcsd_router_fanout_total"),
        Some(fanout_before),
        "repeats must not fan out"
    );
    let hits = after.value("wcsd_cache_hits_total").expect("hit counter exported");
    assert!(hits >= workload.len() as f64, "expected >= {} hits, saw {hits}", workload.len());
    assert!(after.value("wcsd_cache_misses_total").unwrap_or(0.0) >= workload.len() as f64);

    // STATS reads the same atomics METRICS renders.
    let stats = client.stats().expect("router stats");
    assert_eq!(stats.cache_hits as f64, hits, "STATS and METRICS disagree on hits");
    assert!(stats.cache_misses >= workload.len() as u64);

    let snapshot = cluster.shutdown();
    assert!(snapshot.cache_hits >= workload.len() as u64);
}
