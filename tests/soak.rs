//! Opt-in correctness soak on thousand-vertex graphs (the ROADMAP item
//! lifting the ~30-vertex cap of the `properties.rs` fuzzer).
//!
//! All-pairs oracle verification is quadratic, so the soak samples a few
//! thousand `(s, t, w)` triples per graph instead and re-checks the core
//! invariants at scale: oracle agreement, label minimality, Theorem 3
//! co-monotonicity, `within` consistency, constraint monotonicity, and
//! parallel-batch agreement.
//!
//! Run with: `cargo test --release --test soak -- --ignored`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wcsd::prelude::*;
use wcsd_baselines::online::constrained_bfs;
use wcsd_core::parallel;
use wcsd_graph::generators::{barabasi_albert, road_grid, QualityAssigner, RoadGridConfig};
use wcsd_graph::Graph;

/// Sampled queries per graph.
const SAMPLES: usize = 2_000;

fn soak_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("ba-1100", barabasi_albert(1100, 4, &QualityAssigner::uniform(5), 4242)),
        ("grid-33x33", road_grid(&RoadGridConfig::square(33), &QualityAssigner::uniform(5), 4243)),
        (
            "ws-1000",
            wcsd_graph::generators::watts_strogatz(
                1000,
                6,
                0.1,
                &QualityAssigner::uniform(4),
                4244,
            ),
        ),
    ]
}

fn sample_queries(g: &Graph, rng: &mut StdRng) -> Vec<(u32, u32, u32)> {
    let n = g.num_vertices() as u32;
    let levels = g.distinct_qualities();
    (0..SAMPLES)
        .map(|_| {
            let s = rng.gen_range(0..n);
            let t = rng.gen_range(0..n);
            let w = levels[rng.gen_range(0..levels.len())];
            (s, t, w)
        })
        .collect()
}

#[test]
#[ignore = "multi-second soak; run with cargo test --release --test soak -- --ignored"]
fn thousand_vertex_invariant_soak() {
    for (name, g) in soak_graphs() {
        assert!(g.num_vertices() >= 1000, "{name} is not thousand-vertex scale");
        // Build on the parallel construction path (threads = all cores) and
        // pin it to the sequential build at soak scale before using it: the
        // equivalence suite covers smaller graphs, this is the big-graph leg.
        let idx = IndexBuilder::wc_index_plus().threads(0).build(&g);
        let sequential_idx = IndexBuilder::wc_index_plus().build(&g);
        assert_eq!(
            idx.encode(),
            sequential_idx.encode(),
            "{name}: parallel build diverged from sequential at soak scale"
        );
        drop(sequential_idx);
        let mut rng = StdRng::seed_from_u64(0x50AC ^ g.num_vertices() as u64);
        let queries = sample_queries(&g, &mut rng);

        // Minimality: no dominated entries anywhere, even at this scale.
        assert!(idx.dominated_entries().is_empty(), "{name}: dominated entries");

        // Theorem 3: per-hub (dist, quality) strict co-monotonicity.
        for v in 0..g.num_vertices() as u32 {
            for (hub, group) in idx.labels(v).hub_groups() {
                for pair in group.windows(2) {
                    assert!(
                        pair[0].dist < pair[1].dist && pair[0].quality < pair[1].quality,
                        "{name}: L(v{v})[{hub}] not co-monotone"
                    );
                }
            }
        }

        // Oracle agreement + within-consistency on the sampled triples.
        for &(s, t, w) in &queries {
            let expected = constrained_bfs(&g, s, t, w);
            let got = idx.distance(s, t, w);
            assert_eq!(got, expected, "{name}: Q({s},{t},{w})");
            match got {
                Some(d) => {
                    assert!(idx.within(s, t, w, d), "{name}: within(Q({s},{t},{w}), {d})");
                    assert!(!idx.within(s, t, w, d.saturating_sub(1)) || d == 0);
                }
                None => assert!(!idx.within(s, t, w, u32::MAX), "{name}: Q({s},{t},{w})"),
            }
        }

        // Constraint monotonicity on a subsample of pairs.
        let levels = g.distinct_qualities();
        for &(s, t, _) in queries.iter().take(300) {
            let mut prev = Some(0);
            for &w in &levels {
                let d = idx.distance(s, t, w);
                if let (Some(p), Some(cur)) = (prev, d) {
                    assert!(cur >= p, "{name}: Q({s},{t},{w}) shrank");
                }
                prev = d.or(prev);
            }
        }

        // Parallel batch evaluation agrees with sequential answers.
        let sequential: Vec<_> = queries.iter().map(|&(s, t, w)| idx.distance(s, t, w)).collect();
        for threads in [2, 8] {
            assert_eq!(
                parallel::par_distances(&idx, &queries, threads),
                sequential,
                "{name}: {threads} threads"
            );
        }
    }
}
