//! Property suite for the flat query engine: the read-optimized `FlatIndex`
//! (and the zero-copy `FlatView` over its `WCIF` snapshot) must answer every
//! query **bit-identically** to the nested `WcIndex` it was frozen from,
//! across random graphs, all four query implementations, and the `within`
//! cover predicate — and the `WCIF` decoder must reject corrupted or
//! truncated snapshots with an error, never a panic or a wrong index.
//!
//! Mirrors the seeded-fuzzer style of `tests/properties.rs` and the snapshot
//! corruption coverage of the graph-snapshot suite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wcsd::prelude::*;
use wcsd_core::dynamic::DynamicWcIndex;

/// Number of random graphs each property is checked against.
const CASES: u64 = 32;

/// Deterministic random graph, same construction as `tests/properties.rs`.
fn random_graph(seed: u64, max_n: usize, max_edges: usize, max_q: u32) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) ^ 0x00F1_A700);
    let n = rng.gen_range(2..=max_n);
    let m = rng.gen_range(0..=max_edges);
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        let q = rng.gen_range(1..=max_q);
        b.add_edge(u, v, q);
    }
    b.build()
}

/// Random `(s, t, w)` queries including out-of-domain quality levels.
fn random_queries(rng: &mut StdRng, n: u32, max_q: u32, count: usize) -> Vec<(u32, u32, u32)> {
    (0..count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(1..=max_q + 2)))
        .collect()
}

/// The flat engine agrees with the nested index on every query, for all four
/// query implementations, on both the owned and the borrowed form.
#[test]
fn flat_answers_are_bit_identical() {
    for seed in 0..CASES {
        let g = random_graph(seed, 28, 90, 5);
        let idx = IndexBuilder::wc_index_plus().build(&g);
        let flat = FlatIndex::from_index(&idx);
        let bytes = flat.encode();
        let view = FlatView::parse(&bytes).expect("own encoding parses");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1A7);
        for (s, t, w) in random_queries(&mut rng, g.num_vertices() as u32, 5, 200) {
            for imp in
                [QueryImpl::PairScan, QueryImpl::HubBucket, QueryImpl::Merge, QueryImpl::Chunked]
            {
                let expected = idx.distance_with(s, t, w, imp);
                assert_eq!(
                    flat.distance_with(s, t, w, imp),
                    expected,
                    "seed {seed}: FlatIndex Q({s},{t},{w}) under {imp:?}"
                );
                assert_eq!(
                    view.distance_with(s, t, w, imp),
                    expected,
                    "seed {seed}: FlatView Q({s},{t},{w}) under {imp:?}"
                );
            }
        }
    }
}

/// `within` agrees between representations for bounds straddling the answer.
#[test]
fn flat_within_matches_nested() {
    for seed in 0..CASES {
        let g = random_graph(seed, 24, 70, 4);
        let idx = IndexBuilder::wc_index_plus().build(&g);
        let flat = FlatIndex::from_index(&idx);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x717A);
        for (s, t, w) in random_queries(&mut rng, g.num_vertices() as u32, 4, 100) {
            for d in [0, 1, 2, 4, 8, u32::MAX] {
                assert_eq!(
                    flat.within(s, t, w, d),
                    idx.within(s, t, w, d),
                    "seed {seed}: within({s},{t},{w},{d})"
                );
            }
        }
    }
}

/// Freezing and thawing is lossless: `to_index` reconstructs equal label
/// sets, and the `WCIF` snapshot round-trips to an equal flat index.
#[test]
fn flat_roundtrips_are_lossless() {
    for seed in 0..CASES {
        let g = random_graph(seed, 26, 80, 5);
        let idx = IndexBuilder::wc_index_plus().build(&g);
        let flat = FlatIndex::from_index(&idx);
        let thawed = flat.to_index();
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(thawed.labels(v), idx.labels(v), "seed {seed}: vertex {v}");
        }
        assert_eq!(thawed.order(), idx.order(), "seed {seed}");
        let decoded = FlatIndex::decode(&flat.encode()).expect("own encoding decodes");
        assert_eq!(decoded, flat, "seed {seed}");
        assert_eq!(decoded.stats(), idx.stats(), "seed {seed}");
    }
}

/// Batch evaluation answers identically through every engine and thread
/// count (the server's `BATCH` path runs over the flat form).
#[test]
fn parallel_batches_agree_across_engines() {
    let g = random_graph(7, 28, 90, 5);
    let idx = IndexBuilder::wc_index_plus().build(&g);
    let flat = FlatIndex::from_index(&idx);
    let bytes = flat.encode();
    let view = FlatView::parse(&bytes).expect("own encoding parses");
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let queries = random_queries(&mut rng, g.num_vertices() as u32, 5, 300);
    let expected = wcsd::core::parallel::par_distances(&idx, &queries, 1);
    for threads in [1, 3] {
        assert_eq!(wcsd::core::parallel::par_distances(&flat, &queries, threads), expected);
        assert_eq!(wcsd::core::parallel::par_distances(&view, &queries, threads), expected);
    }
}

/// Every truncation of a valid `WCIF` snapshot is rejected with an error.
#[test]
fn wcif_rejects_truncation() {
    let g = random_graph(3, 20, 60, 4);
    let flat = FlatIndex::from_index(&IndexBuilder::wc_index_plus().build(&g));
    let bytes = flat.encode();
    for cut in 0..bytes.len() {
        assert!(FlatIndex::decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
    }
    let mut extended = bytes.to_vec();
    extended.extend_from_slice(&[0; 8]);
    assert!(FlatIndex::decode(&extended).is_err(), "trailing junk accepted");
}

/// Single-word corruptions of the header and directory sections either
/// decode to an index that still answers like the original, or are rejected
/// — they never panic. Length-preserving corruptions that scramble offsets,
/// group hubs, or the vertex order must be caught by validation.
#[test]
fn wcif_corruption_never_panics() {
    let g = random_graph(11, 22, 66, 4);
    let idx = IndexBuilder::wc_index_plus().build(&g);
    let flat = FlatIndex::from_index(&idx);
    let bytes = flat.encode().to_vec();
    let mut rng = StdRng::seed_from_u64(0xC0_22);
    // Exhaustive over the header, sampled over the arrays.
    let mut positions: Vec<usize> = (0..20.min(bytes.len())).collect();
    for _ in 0..400 {
        positions.push(rng.gen_range(0..bytes.len()));
    }
    for pos in positions {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= flip;
            let decoded = FlatIndex::decode(&corrupt);
            // The zero-copy view validator and the owned decode validator
            // must accept/reject exactly the same inputs.
            assert_eq!(
                FlatView::parse(&corrupt).is_ok(),
                decoded.is_ok(),
                "view/owned validators disagree at byte {pos} flip {flip:#x}"
            );
            if let Ok(decoded) = decoded {
                // A surviving decode (e.g. a flipped distance word) must
                // still be a structurally valid index: spot-check queries
                // cannot panic.
                for s in 0..g.num_vertices() as u32 {
                    let _ = decoded.distance(s, 0, 1);
                }
            }
        }
    }
}

/// The header magic distinguishes the two snapshot formats: feeding either
/// decoder the other format's bytes errors cleanly.
#[test]
fn snapshot_formats_are_not_confusable() {
    let g = random_graph(5, 20, 60, 4);
    let idx = IndexBuilder::wc_index_plus().build(&g);
    let flat = FlatIndex::from_index(&idx);
    assert!(WcIndex::decode(&flat.encode()).is_err());
    assert!(FlatIndex::decode(&idx.encode()).is_err());
}

/// A dynamic index re-frozen after updates answers exactly like its live
/// nested index, including through a `WCIF` round trip.
#[test]
fn refrozen_dynamic_index_matches_live_index() {
    let mut rng = StdRng::seed_from_u64(42);
    let g = random_graph(13, 24, 70, 4);
    let mut dyn_idx = DynamicWcIndex::new(&g, IndexBuilder::default());
    let n = dyn_idx.graph().num_vertices() as u32;
    for _ in 0..8 {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        dyn_idx.insert_edge(a, b, rng.gen_range(1..=4));
    }
    let frozen = dyn_idx.freeze();
    let reloaded = FlatIndex::decode(&frozen.encode()).expect("frozen snapshot decodes");
    for s in 0..n {
        for t in 0..n {
            for w in 1..=4 {
                assert_eq!(frozen.distance(s, t, w), dyn_idx.distance(s, t, w));
                assert_eq!(reloaded.distance(s, t, w), dyn_idx.distance(s, t, w));
            }
        }
    }
}
