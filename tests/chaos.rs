//! Chaos suite for the self-healing serving tier: deterministic fault
//! injection through `wcsd_server::failpoint` plus real kill/restart drills,
//! proving the robustness invariants end to end:
//!
//! * killing a shard's primary fails traffic over to its replica with
//!   **bit-identical** answers (replicas serve the same frozen snapshot);
//! * a killed backend degrades and then **un-degrades automatically** once
//!   restarted on the same port — driven purely by the router's background
//!   prober, with no client query traffic;
//! * a feed crash mid-snapshot-write (torn temp file) never corrupts the
//!   snapshot directory: recovery picks the previous generation, and the
//!   next feed continues the numbering instead of overwriting history;
//! * an overloaded reactor **sheds** `BATCH` work with a busy reply whose
//!   wording is byte-identical on both wire protocols, keeps the pending
//!   queue bounded, and answers everything it did not shed correctly.
//!
//! The failpoint registry is process-global, and the router tests watch
//! prober-driven gauges that an armed `router.probe` site in a parallel test
//! would corrupt — so every test in this file serializes on [`serial`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use wcsd::prelude::*;
use wcsd_bench::freshness::{run_feed, EdgeUpdate, FeedConfig};
use wcsd_bench::loadgen::{self, LoadgenConfig};
use wcsd_bench::QueryWorkload;
use wcsd_core::dynamic::DynamicWcIndex;
use wcsd_graph::generators::{barabasi_albert, QualityAssigner};
use wcsd_obs::scrape::Scrape;
use wcsd_server::failpoint::{self, Action};
use wcsd_server::protocol::BUSY_REASON;

/// Serializes the whole suite: failpoints are process-global, so two tests
/// arming (or depending on the absence of) the same site must not overlap.
fn serial() -> MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    // A panicked test poisons the lock but leaves nothing shared behind
    // (its `Armed` guards disarm on unwind), so poisoning is ignorable.
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms a failpoint and guarantees it is disarmed again, even on panic.
struct Armed(&'static str);

impl Armed {
    fn new(site: &'static str, action: Action, count: Option<u64>) -> Self {
        failpoint::set(site, action, count);
        Armed(site)
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        failpoint::clear(self.0);
    }
}

/// Full unsharded reference index over `g`.
fn full_flat(g: &Graph) -> FlatIndex {
    FlatIndex::from_index(&IndexBuilder::wc_index_plus().build(g))
}

/// Binds a reactor over `index` on an ephemeral port and runs it.
fn spawn_server(
    index: &Arc<FlatIndex>,
    config: ServerConfig,
) -> (String, std::thread::JoinHandle<wcsd_server::ServerSnapshot>) {
    let server = Server::bind_flat(Arc::clone(index), config).expect("bind server");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Sends `SHUTDOWN` to `addr` and joins `handle`.
fn kill(addr: &str, handle: std::thread::JoinHandle<wcsd_server::ServerSnapshot>) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    c.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

/// Polls `cond` every 25 ms until it holds, panicking after `deadline`.
/// Returns how long it took.
fn wait_for(mut cond: impl FnMut() -> bool, deadline: Duration, what: &str) -> Duration {
    let start = Instant::now();
    loop {
        if cond() {
            return start.elapsed();
        }
        if start.elapsed() > deadline {
            panic!("timed out after {deadline:?} waiting for {what}");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// One `METRICS` scrape over a fresh text connection.
fn scrape(addr: &str) -> Scrape {
    let mut c = Client::connect(addr).expect("connect for metrics");
    Scrape::parse(&c.metrics(false).expect("metrics"))
}

// ---------------------------------------------------------------------------
// Replica failover.
// ---------------------------------------------------------------------------

/// Killing a shard's primary must be invisible to clients: the router fails
/// over to the replica serving the same frozen shard snapshot, so every
/// answer stays bit-identical to the unsharded reference — not one `ERR`.
#[test]
fn replica_failover_serves_bit_identical_answers() {
    let _serial = serial();
    let g = barabasi_albert(70, 2, &QualityAssigner::uniform(4), 31);
    let flat = full_flat(&g);
    let partition = Partition::build(&g, 2, 9);
    let sharded = ShardedIndex::build(&g, &partition);
    let shards = sharded.shards();

    // Shard 0: single replica. Shard 1: primary + replica over the SAME
    // frozen snapshot — identical answers by construction.
    let (a0, h0) = spawn_server(&shards[0], ServerConfig::default());
    let (a1_primary, h1_primary) = spawn_server(&shards[1], ServerConfig::default());
    let (a1_replica, h1_replica) = spawn_server(&shards[1], ServerConfig::default());

    let config = RouterConfig {
        backend_timeout: Duration::from_millis(500),
        probe_interval: Duration::from_millis(150),
        // The repeated workload must re-fan-out (not hit the router's result
        // cache) for the mid-request failover to be exercised at all.
        cache_capacity: 0,
        ..RouterConfig::default()
    };
    let groups = vec![vec![a0.clone()], vec![a1_primary.clone(), a1_replica.clone()]];
    let router = Router::bind(sharded.overlay().clone(), groups, config).expect("bind router");
    let router_addr = router.local_addr().to_string();
    let router_handle = std::thread::spawn(move || router.run());

    let n = g.num_vertices() as u32;
    let mut rng = StdRng::seed_from_u64(0xFA11_07E5);
    let workload: Vec<(u32, u32, u32)> =
        (0..40).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(1..=5))).collect();

    let mut client = Client::connect_with(&router_addr, Protocol::Binary).expect("connect router");
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let healthy = client.batch(&workload).expect("healthy batch");
    for (i, &(s, t, w)) in workload.iter().enumerate() {
        assert_eq!(healthy[i], flat.distance_with(s, t, w, QueryImpl::Merge), "Q({s},{t},{w})");
    }

    // Kill shard 1's primary. Its port closes immediately.
    kill(&a1_primary, h1_primary);

    // Every request still succeeds — the exchange retries the primary once,
    // opens its breaker, and fails over to the replica mid-request.
    let after = client.batch(&workload).expect("failover batch must succeed, not ERR");
    assert_eq!(after, healthy, "replica answers diverge from the primary's");
    for &(s, t, w) in workload.iter().take(10) {
        assert_eq!(
            client.query(s, t, w).expect("failover query"),
            flat.distance_with(s, t, w, QueryImpl::Merge),
            "failover Q({s},{t},{w})"
        );
    }

    // The failover is observable: at least one failover counted, and the
    // dead primary's breaker shows as the one degraded replica.
    let m = scrape(&router_addr);
    assert!(
        m.value("wcsd_router_failovers_total").unwrap_or(0.0) >= 1.0,
        "failover counter did not move"
    );
    assert_eq!(m.value("wcsd_router_degraded_backends"), Some(1.0), "degraded gauge");

    kill(&router_addr, router_handle);
    kill(&a0, h0);
    kill(&a1_replica, h1_replica);
}

/// With both of a shard's replicas healthy, the router's round-robin rotation
/// must spread exchanges across them instead of pinning replica 0 — and every
/// answer stays bit-identical regardless of which replica served it. The
/// spread is read off `wcsd_router_replica_requests_total{shard, replica}`.
#[test]
fn round_robin_spreads_load_across_healthy_replicas() {
    let _serial = serial();
    let g = barabasi_albert(70, 2, &QualityAssigner::uniform(4), 31);
    let flat = full_flat(&g);
    let partition = Partition::build(&g, 2, 9);
    let sharded = ShardedIndex::build(&g, &partition);
    let shards = sharded.shards();

    let (a0, h0) = spawn_server(&shards[0], ServerConfig::default());
    let (a1_primary, h1_primary) = spawn_server(&shards[1], ServerConfig::default());
    let (a1_replica, h1_replica) = spawn_server(&shards[1], ServerConfig::default());

    // Cache off so every query fans out; probing off so breakers (and hence
    // the preference order's classes) never move during the drill.
    let config = RouterConfig {
        probe_interval: Duration::ZERO,
        cache_capacity: 0,
        ..RouterConfig::default()
    };
    let groups = vec![vec![a0.clone()], vec![a1_primary.clone(), a1_replica.clone()]];
    let router = Router::bind(sharded.overlay().clone(), groups, config).expect("bind router");
    let router_addr = router.local_addr().to_string();
    let router_handle = std::thread::spawn(move || router.run());

    let n = g.num_vertices() as u32;
    let mut rng = StdRng::seed_from_u64(0x0b0b_5eed);
    let mut client = Client::connect_with(&router_addr, Protocol::Binary).expect("connect router");
    for _ in 0..40 {
        let (s, t, w) = (rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(1..=5));
        assert_eq!(
            client.query(s, t, w).expect("balanced query"),
            flat.distance_with(s, t, w, QueryImpl::Merge),
            "Q({s},{t},{w})"
        );
    }

    let m = scrape(&router_addr);
    let served = |addr: &str| {
        let label = format!("replica=\"{addr}\"");
        m.sum_matching("wcsd_router_replica_requests_total", &[label.as_str()])
    };
    let (primary, replica) = (served(&a1_primary), served(&a1_replica));
    assert!(
        primary >= 1.0 && replica >= 1.0,
        "round-robin must hit both replicas: primary={primary}, replica={replica}"
    );
    // Healthy-group rotation alternates, so the split cannot be lopsided.
    let spread = primary.min(replica) / primary.max(replica);
    assert!(spread >= 0.5, "replica load too skewed: primary={primary}, replica={replica}");

    kill(&router_addr, router_handle);
    kill(&a0, h0);
    kill(&a1_primary, h1_primary);
    kill(&a1_replica, h1_replica);
}

// ---------------------------------------------------------------------------
// Probe-driven degrade / un-degrade.
// ---------------------------------------------------------------------------

/// A killed single-replica backend degrades via the background prober and
/// un-degrades automatically once restarted **on the same port** — with no
/// client query traffic at all (only router-local `METRICS` scrapes, which
/// never touch a backend). This also exercises the `SO_REUSEADDR` listener:
/// the restart re-acquires the port while the predecessor's connections are
/// still in TIME_WAIT.
#[test]
fn killed_backend_undegrades_after_restart_without_client_traffic() {
    let _serial = serial();
    let g = barabasi_albert(60, 2, &QualityAssigner::uniform(4), 12);
    let flat = full_flat(&g);
    let partition = Partition::build(&g, 2, 4);
    let sharded = ShardedIndex::build(&g, &partition);
    let shards = sharded.shards();

    let (a0, h0) = spawn_server(&shards[0], ServerConfig::default());
    let (a1, h1) = spawn_server(&shards[1], ServerConfig::default());

    let probe_interval = Duration::from_millis(150);
    let config = RouterConfig {
        backend_timeout: Duration::from_millis(500),
        probe_interval,
        // The recovery proof re-issues the pre-kill query; it must reach the
        // restarted backend, not the router's result cache.
        cache_capacity: 0,
        ..RouterConfig::default()
    };
    let groups = vec![vec![a0.clone()], vec![a1.clone()]];
    let router = Router::bind(sharded.overlay().clone(), groups, config).expect("bind router");
    let router_addr = router.local_addr().to_string();
    let router_handle = std::thread::spawn(move || router.run());

    // A pair crossing into shard 1, so recovery can be proven with traffic
    // that must touch the restarted backend.
    let in_shard = |shard: u32| -> u32 {
        (0..g.num_vertices() as u32).find(|&v| partition.shard_of(v) == shard).unwrap()
    };
    let cross = (in_shard(0), in_shard(1));
    let mut client = Client::connect(&router_addr).expect("connect router");
    assert_eq!(
        client.query(cross.0, cross.1, 1).expect("healthy cross-shard query"),
        flat.distance_with(cross.0, cross.1, 1, QueryImpl::Merge)
    );

    // Kill backend 1. From here on, NO query traffic: the degrade and the
    // recovery below are driven entirely by the router's prober.
    kill(&a1, h1);
    wait_for(
        || scrape(&router_addr).value("wcsd_router_degraded_backends") == Some(1.0),
        Duration::from_secs(5),
        "prober to degrade the killed backend",
    );

    // Restart the same shard snapshot on the same port.
    let port: u16 = a1.rsplit(':').next().unwrap().parse().unwrap();
    let restarted =
        Server::bind_flat(Arc::clone(&shards[1]), ServerConfig { port, ..ServerConfig::default() })
            .expect("rebind the killed backend's port (SO_REUSEADDR)");
    assert_eq!(restarted.local_addr().to_string(), a1);
    let h1 = std::thread::spawn(move || restarted.run());

    // Un-degraded within two probe intervals of the restart (plus CI
    // scheduling slack) — the acceptance bound for self-healing.
    let took = wait_for(
        || scrape(&router_addr).value("wcsd_router_degraded_backends") == Some(0.0),
        2 * probe_interval + Duration::from_secs(1),
        "prober to un-degrade the restarted backend",
    );
    assert!(
        took <= 2 * probe_interval + Duration::from_secs(1),
        "un-degrade took {took:?}, want <= 2 probe intervals"
    );
    let m = scrape(&router_addr);
    assert!(m.value("wcsd_router_probes_total").unwrap_or(0.0) >= 2.0, "probes counted");
    assert!(m.value("wcsd_router_probe_failures_total").unwrap_or(0.0) >= 1.0, "failures counted");

    // And the recovery is real: cross-shard traffic is correct again.
    assert_eq!(
        client.query(cross.0, cross.1, 1).expect("query after recovery"),
        flat.distance_with(cross.0, cross.1, 1, QueryImpl::Merge)
    );

    kill(&router_addr, router_handle);
    kill(&a0, h0);
    kill(&a1, h1);
}

/// The `router.probe` failpoint forces probe failures without killing
/// anything: every replica's breaker opens, and clearing the failpoint lets
/// the next probe round close them again. The deterministic core of the CI
/// chaos smoke.
#[test]
fn probe_failpoint_degrades_and_recovery_closes_breakers() {
    let _serial = serial();
    let g = barabasi_albert(40, 2, &QualityAssigner::uniform(4), 8);
    let partition = Partition::build(&g, 2, 2);
    let sharded = ShardedIndex::build(&g, &partition);
    let shards = sharded.shards();

    let (a0, h0) = spawn_server(&shards[0], ServerConfig::default());
    let (a1, h1) = spawn_server(&shards[1], ServerConfig::default());
    let config =
        RouterConfig { probe_interval: Duration::from_millis(100), ..RouterConfig::default() };
    let router =
        Router::bind(sharded.overlay().clone(), vec![vec![a0.clone()], vec![a1.clone()]], config)
            .expect("bind router");
    let router_addr = router.local_addr().to_string();
    let router_handle = std::thread::spawn(move || router.run());

    {
        let _armed = Armed::new("router.probe", Action::Fail, None);
        wait_for(
            || scrape(&router_addr).value("wcsd_router_degraded_backends") == Some(2.0),
            Duration::from_secs(5),
            "failing probes to open every breaker",
        );
    } // disarmed here: probes succeed again

    wait_for(
        || scrape(&router_addr).value("wcsd_router_degraded_backends") == Some(0.0),
        Duration::from_secs(5),
        "healthy probes to close the breakers",
    );

    // Traffic was never lost — breakers order replicas, they do not refuse.
    let flat = full_flat(&g);
    let mut client = Client::connect(&router_addr).expect("connect router");
    assert_eq!(
        client.query(0, 1, 1).expect("query after breaker recovery"),
        flat.distance_with(0, 1, 1, QueryImpl::Merge)
    );

    kill(&router_addr, router_handle);
    kill(&a0, h0);
    kill(&a1, h1);
}

// ---------------------------------------------------------------------------
// Crash-safe snapshots.
// ---------------------------------------------------------------------------

/// A feed process crashing mid-snapshot-write (simulated by the
/// `snapshot.write` failpoint tearing the write after 8 bytes) must never
/// corrupt the snapshot directory: the torn temp file is skipped, recovery
/// picks the previous generation byte-for-byte, and the next feed continues
/// the generation numbering instead of overwriting history.
#[test]
fn torn_snapshot_write_keeps_previous_generation_servable() {
    let _serial = serial();
    let dir = std::env::temp_dir().join(format!("wcsd-chaos-feed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let g = barabasi_albert(50, 3, &QualityAssigner::uniform(4), 21);
    let mut dyn_idx = DynamicWcIndex::new(&g, IndexBuilder::default());
    let config = FeedConfig { batch_size: 4, addr: None, connect_timeout: Duration::from_secs(1) };

    let (_r1, snaps) =
        run_feed("chaos", &mut dyn_idx, &[EdgeUpdate::Add { u: 0, v: 49, q: 4 }], &dir, &config)
            .expect("first feed");
    assert_eq!(snaps.len(), 1);
    let gen1 = snaps[0].clone();
    assert!(gen1.ends_with("gen-000001.wcif"), "unexpected snapshot name {}", gen1.display());
    let (reference, _) =
        wcsd_server::load_newest_valid_snapshot(&dir).expect("gen-1 is valid before the crash");

    // The crash: the next snapshot write stops after 8 bytes.
    {
        let _armed = Armed::new("snapshot.write", Action::PartialWrite(8), Some(1));
        let err = run_feed(
            "chaos",
            &mut dyn_idx,
            &[EdgeUpdate::Add { u: 1, v: 48, q: 3 }],
            &dir,
            &config,
        )
        .expect_err("torn write must fail the feed");
        assert!(err.contains("injected crash"), "unexpected error: {err}");
    }

    // The torn write never became a generation, and recovery — the exact
    // code path behind `wcsd-cli serve <dir>` and `RELOAD <dir>` — still
    // picks gen-1, byte-identical to the pre-crash snapshot.
    assert!(!dir.join("gen-000002.wcif").exists(), "torn temp was promoted");
    let (recovered, path) = wcsd_server::load_newest_valid_snapshot(&dir).expect("recovery");
    assert_eq!(path, gen1, "recovery must pick the surviving generation");
    assert_eq!(recovered.encode(), reference.encode(), "recovered snapshot differs");

    // The healed pipeline continues the numbering: gen-2, never a rewrite
    // of gen-1.
    let (_r3, snaps) =
        run_feed("chaos", &mut dyn_idx, &[EdgeUpdate::Add { u: 2, v: 47, q: 2 }], &dir, &config)
            .expect("feed after recovery");
    assert!(snaps[0].ends_with("gen-000002.wcif"), "numbering restarted: {}", snaps[0].display());
    let (_, newest) = wcsd_server::load_newest_valid_snapshot(&dir).expect("post-recovery load");
    assert_eq!(newest, snaps[0]);

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Overload shedding.
// ---------------------------------------------------------------------------

/// With the single batch worker pinned by a delayed job and a pending queue
/// of one, concurrent `BATCH`es shed — and the busy reply reads
/// byte-identically on both wire protocols. The pinned batch itself, and
/// any batch after the queue drains, completes with correct answers.
#[test]
fn overload_shed_wording_is_identical_on_both_protocols() {
    let _serial = serial();
    let g = barabasi_albert(40, 2, &QualityAssigner::uniform(4), 3);
    let reference = full_flat(&g);
    let config = ServerConfig { batch_workers: 1, max_pending_jobs: 1, ..ServerConfig::default() };
    let (addr, handle) = spawn_server(&Arc::new(reference.clone()), config);

    let batch: Vec<(u32, u32, u32)> =
        (0..30u32).map(|i| (i % 40, (i * 7) % 40, 1 + i % 4)).collect();

    // One slow batch occupies the worker for 800 ms; with the queue bounded
    // at one pending job, everything submitted behind it sheds.
    let _armed = Armed::new("worker.batch", Action::Delay(800), Some(1));
    let slow = {
        let (addr, batch) = (addr.clone(), batch.clone());
        std::thread::spawn(move || Client::connect(&addr).expect("connect").batch(&batch))
    };
    std::thread::sleep(Duration::from_millis(250)); // the slow batch owns the worker by now

    let mut text = Client::connect_with(&addr, Protocol::Text).expect("text client");
    let mut binary = Client::connect_with(&addr, Protocol::Binary).expect("binary client");
    let text_err = text.batch(&batch).expect_err("text batch must shed");
    let binary_err = binary.batch(&batch).expect_err("binary batch must shed");
    assert_eq!(text_err, binary_err, "busy wording differs across protocols");
    assert_eq!(text_err, format!("server error: {BUSY_REASON}"));

    // The pinned batch was merely slow, never wrong.
    let slow_answers = slow.join().expect("slow thread").expect("pinned batch succeeds");
    for (i, &(s, t, w)) in batch.iter().enumerate() {
        assert_eq!(slow_answers[i], reference.distance_with(s, t, w, QueryImpl::Merge));
    }

    // Both sheds are on the books — STATS and METRICS read the same atomics
    // — and the drained server accepts work again on the same connections.
    let stats = text.stats().expect("stats");
    assert_eq!(stats.shed, 2, "exactly the two shed batches");
    let m = Scrape::parse(&text.metrics(false).expect("metrics"));
    assert_eq!(m.sum_matching("wcsd_shed_total", &[]), 2.0);
    assert_eq!(m.value("wcsd_pending_jobs_limit"), Some(1.0));
    assert_eq!(text.batch(&batch).expect("post-shed text batch"), slow_answers);
    assert_eq!(binary.batch(&batch).expect("post-shed binary batch"), slow_answers);

    drop(text);
    drop(binary);
    kill(&addr, handle);
}

/// Open-loop load far above capacity: the reactor sheds instead of queueing
/// without bound, some work still completes, and **every** answer that does
/// come back is bit-identical to the direct index — shedding degrades
/// throughput, never correctness.
#[test]
fn open_loop_overload_sheds_bounded_and_nonshed_answers_are_correct() {
    let _serial = serial();
    let g = barabasi_albert(60, 3, &QualityAssigner::uniform(4), 17);
    let reference = full_flat(&g);
    let config = ServerConfig { batch_workers: 1, max_pending_jobs: 2, ..ServerConfig::default() };
    let (addr, handle) = spawn_server(&Arc::new(reference.clone()), config);

    // 25 ms per batch on one worker caps capacity at ~40 batches/s; the
    // open-loop schedule below offers ~500 batches/s.
    let _armed = Armed::new("worker.batch", Action::Delay(25), None);
    let workload = QueryWorkload::uniform(&g, 400, 77);
    let lg = LoadgenConfig {
        connections: 4,
        batch_size: 8,
        connect_timeout: Duration::from_secs(5),
        protocol: Protocol::Binary,
        rate_qps: 4000.0,
    };
    let (result, answers) =
        loadgen::run_against(&addr, "chaos-overload", &workload, &lg).expect("loadgen run");

    assert!(result.errors > 0, "no shedding at >10x capacity");
    assert!(result.errors < result.queries, "nothing completed under overload");
    for (&(s, t, w), answer) in workload.queries().iter().zip(&answers) {
        if answer.is_some() {
            assert_eq!(
                *answer,
                reference.distance_with(s, t, w, QueryImpl::Merge),
                "non-shed answer wrong for Q({s},{t},{w})"
            );
        }
    }

    // The pending queue stayed bounded by admission control, the sheds are
    // counted, and STATS agrees with METRICS.
    let mut probe = Client::connect(&addr).expect("probe connection");
    let m = Scrape::parse(&probe.metrics(false).expect("metrics"));
    let shed = m.sum_matching("wcsd_shed_total", &[]);
    assert!(shed >= 1.0, "shed counter did not move");
    assert_eq!(m.value("wcsd_pending_jobs_limit"), Some(2.0));
    assert!(m.value("wcsd_pending_jobs").unwrap_or(0.0) <= 2.0, "pending gauge above limit");
    assert_eq!(probe.stats().expect("stats").shed as f64, shed);

    drop(probe);
    kill(&addr, handle);
}

// ---------------------------------------------------------------------------
// Accept-path fault injection.
// ---------------------------------------------------------------------------

/// `reactor.accept=2*refuse` drops exactly two fresh connections before
/// registration — their first request fails, nothing else is harmed, and the
/// third connection works end to end.
#[test]
fn refused_accepts_spend_their_budget_then_recover() {
    let _serial = serial();
    let g = barabasi_albert(30, 2, &QualityAssigner::uniform(4), 6);
    let reference = full_flat(&g);
    let (addr, handle) = spawn_server(&Arc::new(reference.clone()), ServerConfig::default());

    let _armed = Armed::new("reactor.accept", Action::Refuse, Some(2));
    for doomed in 0..2 {
        // TCP connect still completes (the kernel backlog accepts it); the
        // reactor then drops the socket, so the first request errors.
        let mut c = Client::connect(&addr).expect("tcp connect");
        assert!(c.query(0, 1, 1).is_err(), "connection {doomed} should have been dropped");
    }
    let mut ok = Client::connect(&addr).expect("post-budget connect");
    assert_eq!(
        ok.query(0, 1, 1).expect("post-budget query"),
        reference.distance_with(0, 1, 1, QueryImpl::Merge)
    );

    drop(ok);
    kill(&addr, handle);
}
