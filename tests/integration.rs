//! Cross-crate integration tests: every algorithm in the workspace must agree
//! on every query, across graph families, orderings, construction modes and
//! serialization round-trips.

use wcsd::prelude::*;
use wcsd_baselines::{online, LcrAdaptIndex, NaiveWIndex, PartitionedGraphs};
use wcsd_core::directed::DirectedWcIndex;
use wcsd_core::dynamic::DynamicWcIndex;
use wcsd_core::path::PathIndex;
use wcsd_core::weighted::WeightedWcIndex;
use wcsd_graph::generators::{
    barabasi_albert, erdos_renyi, road_grid, watts_strogatz, QualityAssigner, RoadGridConfig,
};
use wcsd_graph::{DiGraph, Graph, WeightedGraph};

fn test_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("road", road_grid(&RoadGridConfig::square(9), &QualityAssigner::uniform(5), 1)),
        ("social", barabasi_albert(120, 3, &QualityAssigner::ratings_skew(5), 2)),
        ("random", erdos_renyi(90, 0.05, &QualityAssigner::uniform(4), 3)),
        ("smallworld", watts_strogatz(100, 4, 0.2, &QualityAssigner::uniform(3), 4)),
    ]
}

fn sample_queries(g: &Graph) -> Vec<(u32, u32, u32)> {
    let n = g.num_vertices() as u32;
    let levels = g.distinct_qualities();
    let mut out = Vec::new();
    for s in (0..n).step_by(7) {
        for t in (0..n).step_by(11) {
            for &w in &levels {
                out.push((s, t, w));
            }
        }
    }
    out
}

#[test]
fn all_methods_agree_on_all_graph_families() {
    for (name, g) in test_graphs() {
        let oracle = online::OnlineBfs::new(&g);
        let partitions = PartitionedGraphs::build(&g);
        let naive = NaiveWIndex::build(&g);
        let lcr = LcrAdaptIndex::build(&g);
        let wc = IndexBuilder::wc_index().build(&g);
        let wc_plus = IndexBuilder::wc_index_plus().build(&g);
        for (s, t, w) in sample_queries(&g) {
            let expected = oracle.distance(s, t, w);
            assert_eq!(partitions.distance(s, t, w), expected, "{name}: W-BFS Q({s},{t},{w})");
            assert_eq!(naive.distance(s, t, w), expected, "{name}: Naive Q({s},{t},{w})");
            assert_eq!(lcr.distance(s, t, w), expected, "{name}: LCR Q({s},{t},{w})");
            assert_eq!(wc.distance(s, t, w), expected, "{name}: WC-INDEX Q({s},{t},{w})");
            assert_eq!(wc_plus.distance(s, t, w), expected, "{name}: WC-INDEX+ Q({s},{t},{w})");
        }
    }
}

#[test]
fn every_ordering_strategy_yields_a_correct_index() {
    let g = road_grid(&RoadGridConfig::square(7), &QualityAssigner::uniform(4), 9);
    let oracle = online::OnlineBfs::new(&g);
    for strat in [
        OrderingStrategy::Degree,
        OrderingStrategy::TreeDecomposition,
        OrderingStrategy::Hybrid,
        OrderingStrategy::Natural,
        OrderingStrategy::Random(5),
        OrderingStrategy::BfsLevel,
    ] {
        let idx = IndexBuilder::new().ordering(strat).build(&g);
        for (s, t, w) in sample_queries(&g) {
            assert_eq!(
                idx.distance(s, t, w),
                oracle.distance(s, t, w),
                "{} ordering disagrees on Q({s},{t},{w})",
                strat.name()
            );
        }
        assert!(idx.dominated_entries().is_empty(), "{} ordering broke minimality", strat.name());
    }
}

#[test]
fn basic_and_query_efficient_builds_are_identical() {
    for (name, g) in test_graphs() {
        let order = wcsd_order::degree_order(&g);
        let basic =
            IndexBuilder::new().mode(ConstructionMode::Basic).build_with_order(&g, order.clone());
        let plus =
            IndexBuilder::new().mode(ConstructionMode::QueryEfficient).build_with_order(&g, order);
        assert_eq!(basic.total_entries(), plus.total_entries(), "{name}: entry count differs");
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(basic.labels(v), plus.labels(v), "{name}: labels differ at v{v}");
        }
    }
}

#[test]
fn index_snapshot_roundtrip_preserves_answers() {
    let g = barabasi_albert(150, 3, &QualityAssigner::uniform(5), 12);
    let idx = IndexBuilder::wc_index_plus().build(&g);
    let decoded = WcIndex::decode(&idx.encode()).expect("snapshot decodes");
    for (s, t, w) in sample_queries(&g) {
        assert_eq!(idx.distance(s, t, w), decoded.distance(s, t, w));
    }
}

#[test]
fn graph_snapshot_and_formats_roundtrip() {
    let g = road_grid(&RoadGridConfig::square(8), &QualityAssigner::uniform(3), 5);
    // Binary snapshot.
    let bytes = wcsd::graph::io::snapshot::encode(&g);
    assert_eq!(wcsd::graph::io::snapshot::decode(&bytes).unwrap(), g);
    // Edge list.
    let mut el = Vec::new();
    wcsd::graph::io::edge_list::write_edge_list(&g, &mut el).unwrap();
    assert_eq!(wcsd::graph::io::edge_list::read_edge_list(el.as_slice()).unwrap(), g);
    // DIMACS.
    let mut gr = Vec::new();
    wcsd::graph::io::dimacs::write_dimacs(&g, &mut gr).unwrap();
    assert_eq!(wcsd::graph::io::dimacs::read_dimacs(gr.as_slice()).unwrap(), g);
}

#[test]
fn path_index_agrees_with_distance_index() {
    let g = watts_strogatz(80, 4, 0.15, &QualityAssigner::uniform(4), 21);
    let didx = IndexBuilder::wc_index_plus().build(&g);
    let pidx = PathIndex::build(&g);
    for (s, t, w) in sample_queries(&g) {
        let d = didx.distance(s, t, w);
        assert_eq!(pidx.distance(s, t, w), d);
        if let Some(d) = d {
            let path = pidx.shortest_path(s, t, w).expect("path exists when distance exists");
            assert_eq!(path.len() as u32 - 1, d);
            for pair in path.windows(2) {
                let q = g.edge_quality(pair[0], pair[1]).expect("path edges exist");
                assert!(q >= w);
            }
        }
    }
}

#[test]
fn directed_index_on_symmetrised_graph_matches_undirected() {
    let g = erdos_renyi(70, 0.06, &QualityAssigner::uniform(3), 30);
    let didx = DirectedWcIndex::build(&DiGraph::from_undirected(&g));
    let uidx = IndexBuilder::wc_index_plus().build(&g);
    for (s, t, w) in sample_queries(&g) {
        assert_eq!(didx.distance(s, t, w), uidx.distance(s, t, w));
    }
}

#[test]
fn weighted_index_with_unit_lengths_matches_unweighted() {
    let g = barabasi_albert(90, 3, &QualityAssigner::uniform(4), 8);
    let widx = WeightedWcIndex::build(&WeightedGraph::from_unit_lengths(&g));
    let uidx = IndexBuilder::wc_index_plus().build(&g);
    for (s, t, w) in sample_queries(&g) {
        assert_eq!(widx.distance(s, t, w), uidx.distance(s, t, w));
    }
}

#[test]
fn dynamic_index_tracks_rebuilt_index_through_updates() {
    let g = erdos_renyi(40, 0.05, &QualityAssigner::uniform(4), 33);
    let mut dynamic = DynamicWcIndex::new(&g, IndexBuilder::wc_index_plus());
    let updates = [(1u32, 37u32, 4u32), (5, 20, 2), (0, 39, 3), (12, 13, 1), (7, 29, 4)];
    for (a, b, q) in updates {
        dynamic.insert_edge(a, b, q);
        let fresh = IndexBuilder::wc_index_plus().build(dynamic.graph());
        for (s, t, w) in sample_queries(dynamic.graph()) {
            assert_eq!(
                dynamic.distance(s, t, w),
                fresh.distance(s, t, w),
                "after inserting ({a},{b},{q}): Q({s},{t},{w})"
            );
        }
    }
    assert_eq!(dynamic.rebuild_count(), 0, "insertions must stay incremental");
    // Deletion falls back to a rebuild but stays correct.
    dynamic.remove_edge(1, 37);
    let fresh = IndexBuilder::wc_index_plus().build(dynamic.graph());
    for (s, t, w) in sample_queries(dynamic.graph()) {
        assert_eq!(dynamic.distance(s, t, w), fresh.distance(s, t, w));
    }
}

#[test]
fn quality_domain_maps_real_valued_constraints() {
    // End-to-end: raw f64 bandwidths → ranks → index → queries with raw
    // constraints.
    let raw = [1.0f64, 2.0, 3.0, 5.0, 10.0];
    let dom = QualityDomain::from_raw(&raw);
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1, dom.rank_of(10.0).unwrap());
    b.add_edge(1, 2, dom.rank_of(2.0).unwrap());
    b.add_edge(0, 2, dom.rank_of(1.0).unwrap());
    b.add_edge(2, 3, dom.rank_of(5.0).unwrap());
    let g = b.build();
    let idx = IndexBuilder::wc_index_plus().build(&g);
    // Constraint 1.5 Mbps → must avoid the 1.0-quality edge.
    assert_eq!(idx.distance(0, 2, dom.rank_for_constraint(1.5)), Some(2));
    // Constraint 0.5 → every edge qualifies.
    assert_eq!(idx.distance(0, 2, dom.rank_for_constraint(0.5)), Some(1));
    // Constraint 7 → only the 10.0 edge qualifies; 2 is unreachable.
    assert_eq!(idx.distance(0, 2, dom.rank_for_constraint(7.0)), None);
    assert_eq!(idx.distance(0, 1, dom.rank_for_constraint(7.0)), Some(1));
}
