//! Parity fuzz suite for the branch-free query kernels (`wcsd_core::kernel`):
//! the chunked masked-min merge behind [`QueryImpl::Chunked`] and the batch
//! `distances_from` evaluator must answer **bit-identically** to the scalar
//! `Query⁺` merge and the pair-scan baseline — on the owned [`FlatIndex`],
//! the zero-copy [`FlatView`], and the hot-group (rank-ordered, `WCIF` v2)
//! layout of both — across 48 random graphs per property, including
//! out-of-range quality constraints, unreachable pairs, reflexive pairs, and
//! empty labels.
//!
//! Mirrors the seeded-fuzzer idiom of `tests/flat.rs` / `tests/properties.rs`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wcsd::prelude::*;

/// Number of random graphs each property is checked against.
const CASES: u64 = 48;

/// Deterministic random graph, same construction as `tests/flat.rs`.
fn random_graph(seed: u64, max_n: usize, max_edges: usize, max_q: u32) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) ^ 0x00F1_A700);
    let n = rng.gen_range(2..=max_n);
    let m = rng.gen_range(0..=max_edges);
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        let q = rng.gen_range(1..=max_q);
        b.add_edge(u, v, q);
    }
    b.build()
}

/// Random `(s, t, w)` queries including out-of-domain quality levels.
fn random_queries(rng: &mut StdRng, n: u32, max_q: u32, count: usize) -> Vec<(u32, u32, u32)> {
    (0..count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(1..=max_q + 2)))
        .collect()
}

/// All four query representations of one index: owned and borrowed, in the
/// canonical and the hot-group layout. The `Vec`s keep the snapshot bytes
/// alive for the borrowed views.
struct Engines {
    flat: FlatIndex,
    hot: FlatIndex,
    canonical_bytes: Vec<u8>,
    hot_bytes: Vec<u8>,
}

impl Engines {
    fn build(g: &Graph) -> Self {
        let idx = IndexBuilder::wc_index_plus().build(g);
        let flat = FlatIndex::from_index(&idx);
        let hot = flat.to_hot();
        let canonical_bytes = flat.encode().to_vec();
        let hot_bytes = hot.encode().to_vec();
        Self { flat, hot, canonical_bytes, hot_bytes }
    }

    fn views(&self) -> (FlatView<'_>, FlatView<'_>) {
        (
            FlatView::parse(&self.canonical_bytes).expect("canonical snapshot parses"),
            FlatView::parse(&self.hot_bytes).expect("hot snapshot parses"),
        )
    }
}

/// `Chunked` answers bit-identically to the scalar merge and the pair-scan
/// baseline on every representation, including the hot-group layout.
#[test]
fn chunked_matches_merge_and_pairscan_everywhere() {
    for seed in 0..CASES {
        let g = random_graph(seed, 28, 90, 5);
        let e = Engines::build(&g);
        let (view, hot_view) = e.views();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC41A);
        for (s, t, w) in random_queries(&mut rng, g.num_vertices() as u32, 5, 200) {
            let expected = e.flat.distance_with(s, t, w, QueryImpl::Merge);
            assert_eq!(
                e.flat.distance_with(s, t, w, QueryImpl::PairScan),
                expected,
                "seed {seed}: baseline disagreement on Q({s},{t},{w})"
            );
            for (name, got) in [
                ("FlatIndex", e.flat.distance_with(s, t, w, QueryImpl::Chunked)),
                ("FlatIndex(hot)", e.hot.distance_with(s, t, w, QueryImpl::Chunked)),
                ("FlatView", view.distance_with(s, t, w, QueryImpl::Chunked)),
                ("FlatView(hot)", hot_view.distance_with(s, t, w, QueryImpl::Chunked)),
            ] {
                assert_eq!(got, expected, "seed {seed}: {name} chunked Q({s},{t},{w})");
            }
        }
    }
}

/// The batch kernel (`distances_from`, one directory walk per source) agrees
/// with the per-query merge on every representation — with targets mixing
/// repeats, the source itself, and out-of-range constraints.
#[test]
fn batch_kernel_matches_per_query_answers() {
    for seed in 0..CASES {
        let g = random_graph(seed, 28, 90, 5);
        let e = Engines::build(&g);
        let (view, hot_view) = e.views();
        let n = g.num_vertices() as u32;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0BA7_C4E1);
        for _ in 0..6 {
            let s = rng.gen_range(0..n);
            let mut targets: Vec<(u32, u32)> =
                (0..24).map(|_| (rng.gen_range(0..n), rng.gen_range(1..=7))).collect();
            targets.push((s, 99)); // reflexive under an unsatisfiable constraint
            targets.push((rng.gen_range(0..n), 6)); // above every edge quality
            let expected: Vec<Option<u32>> =
                targets.iter().map(|&(t, w)| e.flat.distance(s, t, w)).collect();
            for (name, got) in [
                ("FlatIndex", e.flat.distances_from(s, &targets)),
                ("FlatIndex(hot)", e.hot.distances_from(s, &targets)),
                ("FlatView", view.distances_from(s, &targets)),
                ("FlatView(hot)", hot_view.distances_from(s, &targets)),
            ] {
                assert_eq!(got, expected, "seed {seed}: {name} distances_from({s})");
            }
        }
    }
}

/// Edge cases the lane kernels must not mishandle: an edgeless graph (every
/// label at its smallest, every cross pair unreachable), reflexive pairs, and
/// an empty target batch.
#[test]
fn kernels_handle_empty_labels_and_unreachable_pairs() {
    let g = GraphBuilder::new(6).build();
    let e = Engines::build(&g);
    let (view, hot_view) = e.views();
    for s in 0..6 {
        for t in 0..6 {
            for w in [1, 3, u32::MAX] {
                let expected = if s == t { Some(0) } else { None };
                for got in [
                    e.flat.distance_with(s, t, w, QueryImpl::Chunked),
                    e.hot.distance_with(s, t, w, QueryImpl::Chunked),
                    view.distance_with(s, t, w, QueryImpl::Chunked),
                    hot_view.distance_with(s, t, w, QueryImpl::Chunked),
                ] {
                    assert_eq!(got, expected, "edgeless Q({s},{t},{w})");
                }
            }
        }
        let targets: Vec<(u32, u32)> = (0..6).map(|t| (t, 1)).collect();
        let expected: Vec<Option<u32>> =
            (0..6).map(|t| if s == t { Some(0) } else { None }).collect();
        assert_eq!(e.flat.distances_from(s, &targets), expected);
        assert_eq!(view.distances_from(s, &targets), expected);
        assert!(e.flat.distances_from(s, &[]).is_empty(), "empty batch");
    }
}

/// The hot-group permutation is invisible to every query implementation: all
/// four impls agree between the canonical and the hot layout on the same
/// random workloads (the layout only reorders each vertex's groups).
#[test]
fn hot_layout_is_transparent_to_all_impls() {
    for seed in 0..CASES {
        let g = random_graph(seed, 24, 70, 4);
        let e = Engines::build(&g);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x407);
        for (s, t, w) in random_queries(&mut rng, g.num_vertices() as u32, 4, 80) {
            for imp in
                [QueryImpl::PairScan, QueryImpl::HubBucket, QueryImpl::Merge, QueryImpl::Chunked]
            {
                assert_eq!(
                    e.hot.distance_with(s, t, w, imp),
                    e.flat.distance_with(s, t, w, imp),
                    "seed {seed}: hot layout diverges on Q({s},{t},{w}) under {imp:?}"
                );
            }
        }
    }
}
