//! End-to-end integration suite for the `wcsd-server` query service: a real
//! TCP server over a real index, driven by the protocol client, the bench
//! load generator, and raw sockets for the malformed-input cases.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;
use wcsd::prelude::*;
use wcsd_bench::loadgen::{self, LoadgenConfig};
use wcsd_bench::QueryWorkload;
use wcsd_graph::generators::{barabasi_albert, QualityAssigner};
use wcsd_graph::Graph;
use wcsd_server::ServerSnapshot;

/// A small scale-free test graph with 4 quality levels.
fn test_graph() -> Graph {
    barabasi_albert(90, 3, &QualityAssigner::uniform(4), 23)
}

/// Starts a server over a fresh index of `g` on an ephemeral port. Returns
/// the address, a reference copy of the index for cross-checking, and the
/// join handle that yields the final counter snapshot.
fn start_server(g: &Graph) -> (String, WcIndex, std::thread::JoinHandle<ServerSnapshot>) {
    // Exercise the parallel construction path end to end: the served index is
    // identical to a sequential build (see tests/parallel_build.rs), so every
    // wire-level assertion below also pins the parallel builder.
    let index = IndexBuilder::wc_index_plus().threads(2).build(g);
    let reference = index.clone();
    let server = Server::bind(index, ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, reference, handle)
}

/// Opens a raw socket speaking the protocol by hand (for malformed input).
fn raw_connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    (BufReader::new(stream.try_clone().unwrap()), stream)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("server reply");
    line.trim_end().to_string()
}

/// The acceptance-criteria round trip: `loadgen` traffic over several
/// connections agrees with direct `WcIndex::distance`, the cache hit rate is
/// reported, and `SHUTDOWN` terminates the server cleanly.
#[test]
fn serve_loadgen_round_trip() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);
    let workload = QueryWorkload::uniform(&g, 400, 7);

    // First pass: individual QUERY requests; second pass: BATCH requests
    // replaying the same workload, so the cache must hit.
    for (pass, batch_size) in [(0usize, 0usize), (1, 13)] {
        let config =
            LoadgenConfig { connections: 3, batch_size, connect_timeout: Duration::from_secs(10) };
        let (result, answers) =
            loadgen::run_against(&addr, "ba-90", &workload, &config).expect("loadgen run");
        assert_eq!(result.errors, 0, "pass {pass} had errors");
        assert_eq!(result.queries, workload.len());
        assert!(result.throughput_qps > 0.0);
        for (&(s, t, w), answer) in workload.queries().iter().zip(&answers) {
            assert_eq!(*answer, reference.distance(s, t, w), "pass {pass}: Q({s},{t},{w})");
        }
        if pass == 1 {
            // Pass 0 cached (at most) 400 distinct keys, pass 1 replays all
            // 400 of them: cumulatively at least half of all lookups hit.
            assert!(
                result.cache_hit_rate >= 0.49,
                "replayed workload should mostly hit the cache, got {}",
                result.cache_hit_rate
            );
        }
    }

    let mut client = Client::connect(&*addr).unwrap();
    client.shutdown().expect("clean shutdown");
    let summary = handle.join().expect("server thread joins after SHUTDOWN");
    assert_eq!(summary.queries as usize, workload.len(), "single-query pass counted");
    assert_eq!(summary.batch_queries as usize, workload.len(), "batched pass counted");
    assert!(summary.cache_hits > 0);
}

/// The `WCIF` serving path end to end: encode a flat snapshot, decode it the
/// way `wcsd-cli serve` does, hand the `Arc<FlatIndex>` to `bind_flat`, and
/// check wire answers (point, batch, within, stats) against the nested index.
#[test]
fn serve_from_flat_snapshot() {
    let g = test_graph();
    let nested = IndexBuilder::wc_index_plus().build(&g);
    let snapshot = FlatIndex::from_index(&nested).encode();
    let loaded = std::sync::Arc::new(FlatIndex::decode(&snapshot).expect("snapshot decodes"));

    let server = Server::bind_flat(loaded, ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    let workload = QueryWorkload::uniform(&g, 120, 11);
    let mut client = Client::connect(&*addr).unwrap();
    for &(s, t, w) in workload.queries() {
        assert_eq!(client.query(s, t, w), Ok(nested.distance(s, t, w)), "Q({s},{t},{w})");
    }
    let answers = client.batch(workload.queries()).expect("batch over flat index");
    for (&(s, t, w), answer) in workload.queries().iter().zip(&answers) {
        assert_eq!(*answer, nested.distance(s, t, w), "batched Q({s},{t},{w})");
    }
    // `within` runs uncached over the flat engine.
    let (s, t, w) = workload.queries()[0];
    if let Some(d) = nested.distance(s, t, w) {
        assert_eq!(client.within(s, t, w, d), Ok(true));
    }
    let stats = client.stats().expect("stats reply");
    assert_eq!(stats.vertices, g.num_vertices());
    assert_eq!(stats.entries, nested.total_entries());

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Malformed requests get `ERR` replies and never poison the connection.
#[test]
fn malformed_commands_are_rejected_not_fatal() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);
    let (mut reader, mut stream) = raw_connect(&addr);

    for bad in
        ["FOO 1 2 3", "QUERY 1", "QUERY a b c", "QUERY 1 2 3 4", "BATCH", "BATCH -5", "STATS x"]
    {
        writeln!(stream, "{bad}").unwrap();
        let reply = read_line(&mut reader);
        assert!(reply.starts_with("ERR "), "{bad:?} -> {reply:?}");
    }

    // The connection is still fully usable afterwards.
    writeln!(stream, "QUERY 0 1 1").unwrap();
    let reply = read_line(&mut reader);
    assert_eq!(
        wcsd_server::protocol::parse_distance_reply(&reply).unwrap(),
        reference.distance(0, 1, 1)
    );

    Client::connect(&*addr).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

/// Out-of-range vertex ids are rejected for QUERY, WITHIN, and inside BATCH.
#[test]
fn out_of_range_vertices_are_rejected() {
    let g = test_graph();
    let n = g.num_vertices() as u32;
    let (addr, _reference, handle) = start_server(&g);
    let mut client = Client::connect(&*addr).unwrap();

    assert!(client.query(n, 0, 1).unwrap_err().contains("out of range"));
    assert!(client.query(0, n + 7, 1).unwrap_err().contains("out of range"));
    assert!(client.within(n, 0, 1, 5).unwrap_err().contains("out of range"));
    let err = client.batch(&[(0, 1, 1), (n, 2, 1), (3, 4, 1)]).unwrap_err();
    assert!(err.contains("batch line 2"), "{err}");
    assert!(err.contains("out of range"), "{err}");

    // Oversized batches are rejected client-side before any bytes are sent,
    // so the connection cannot desynchronise.
    let oversized = vec![(0u32, 1u32, 1u32); wcsd_server::protocol::MAX_BATCH + 1];
    assert!(client.batch(&oversized).unwrap_err().contains("exceeds"));

    // In-range traffic still works on the same connection.
    assert!(client.query(0, 1, 1).is_ok());
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// `BATCH 0` is a valid empty batch, answered with a bare `OK 0` header.
#[test]
fn batch_zero_is_valid_and_empty() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);
    let mut client = Client::connect(&*addr).unwrap();

    assert_eq!(client.batch(&[]).unwrap(), Vec::<Option<u32>>::new());
    // Framing is intact: the next request on the same connection works.
    assert_eq!(client.query(2, 3, 1).unwrap(), reference.distance(2, 3, 1));

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Clients that disconnect mid-line (or mid-batch) must not take the server
/// down or corrupt other connections.
#[test]
fn mid_line_disconnect_is_harmless() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);

    {
        // Partial request line, no newline, then hard disconnect.
        let (_reader, mut stream) = raw_connect(&addr);
        stream.write_all(b"QUERY 1 2").unwrap();
        stream.flush().unwrap();
    }
    {
        // BATCH header promising more lines than the client ever sends.
        let (_reader, mut stream) = raw_connect(&addr);
        writeln!(stream, "BATCH 5").unwrap();
        writeln!(stream, "0 1 1").unwrap();
        stream.flush().unwrap();
    }

    {
        // A request line streamed without a newline is cut off at the
        // server's line cap with an ERR, instead of growing memory forever.
        let (mut reader, mut stream) = raw_connect(&addr);
        stream.write_all(&vec![b'Q'; 80 * 1024]).unwrap();
        stream.flush().unwrap();
        let reply = read_line(&mut reader);
        assert!(reply.starts_with("ERR request line exceeds"), "{reply:?}");
    }

    // The server is still healthy for a well-behaved client.
    let mut client = Client::connect(&*addr).unwrap();
    assert_eq!(client.query(0, 5, 2).unwrap(), reference.distance(0, 5, 2));
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Many concurrent clients replaying overlapping workloads: every answer is
/// correct and the shared cache serves a substantial share of the lookups.
#[test]
fn concurrent_clients_share_the_cache() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);
    let workload = QueryWorkload::uniform(&g, 120, 99);
    let queries = workload.queries();

    // Warm the cache with one sequential pass so the concurrent phase below
    // has deterministic hit behaviour (no lockstep-miss races).
    let mut warm = Client::connect(&*addr).unwrap();
    for &(s, t, w) in queries {
        assert_eq!(warm.query(s, t, w).unwrap(), reference.distance(s, t, w));
    }

    std::thread::scope(|scope| {
        for _ in 0..6 {
            let addr = addr.clone();
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(&*addr).expect("connect");
                for &(s, t, w) in queries {
                    assert_eq!(client.query(s, t, w).unwrap(), reference.distance(s, t, w));
                }
            });
        }
    });

    let mut client = Client::connect(&*addr).unwrap();
    let stats = client.stats().unwrap();
    let lookups = stats.cache_hits + stats.cache_misses;
    assert_eq!(lookups as usize, 7 * queries.len(), "every query hit the cache layer");
    // After the warm pass every key is resident, so all 6 concurrent passes
    // hit: at most the warm pass' distinct keys ever miss.
    assert!(stats.hit_rate() > 0.5, "hit rate {}", stats.hit_rate());
    assert!(stats.cache_hits as usize >= 6 * queries.len());
    assert_eq!(stats.connections, 8); // warm + 6 workers + this stats client
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// `WITHIN` and `STATS` agree with the index served.
#[test]
fn within_and_stats_agree_with_index() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);
    let mut client = Client::connect(&*addr).unwrap();

    for &(s, t, w) in QueryWorkload::uniform(&g, 50, 3).queries() {
        for d in [0u32, 1, 3, u32::MAX] {
            assert_eq!(client.within(s, t, w, d).unwrap(), reference.within(s, t, w, d));
        }
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.vertices, reference.num_vertices());
    assert_eq!(stats.entries, reference.total_entries());
    assert_eq!(stats.queries, 200); // 50 workload queries x 4 bounds
    client.shutdown().unwrap();
    handle.join().unwrap();
}
