//! End-to-end integration suite for the `wcsd-server` query service: a real
//! TCP server over a real index, driven by the protocol client, the bench
//! load generator, and raw sockets for the malformed-input cases.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use wcsd::prelude::*;
use wcsd_bench::loadgen::{self, LoadgenConfig};
use wcsd_bench::QueryWorkload;
use wcsd_graph::generators::{barabasi_albert, QualityAssigner};
use wcsd_graph::Graph;
use wcsd_server::ServerSnapshot;

/// A small scale-free test graph with 4 quality levels.
fn test_graph() -> Graph {
    barabasi_albert(90, 3, &QualityAssigner::uniform(4), 23)
}

/// A second graph over the same vertex set whose distances differ from
/// [`test_graph`] (different wiring seed), for hot-reload tests.
fn other_graph() -> Graph {
    barabasi_albert(90, 3, &QualityAssigner::uniform(4), 71)
}

/// Writes a `WCIF` snapshot of a fresh index over `g` to a unique temp file
/// and returns (path, reference index).
fn write_snapshot(g: &Graph, tag: &str) -> (String, WcIndex) {
    static UNIQUE: AtomicUsize = AtomicUsize::new(0);
    let index = IndexBuilder::wc_index_plus().build(g);
    let path = std::env::temp_dir().join(format!(
        "wcsd-test-{}-{}-{tag}.fidx",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, FlatIndex::from_index(&index).encode()).expect("write snapshot");
    (path.to_str().expect("utf-8 temp path").to_string(), index)
}

/// Starts a server over a fresh index of `g` on an ephemeral port. Returns
/// the address, a reference copy of the index for cross-checking, and the
/// join handle that yields the final counter snapshot.
fn start_server(g: &Graph) -> (String, WcIndex, std::thread::JoinHandle<ServerSnapshot>) {
    // Exercise the parallel construction path end to end: the served index is
    // identical to a sequential build (see tests/parallel_build.rs), so every
    // wire-level assertion below also pins the parallel builder.
    let index = IndexBuilder::wc_index_plus().threads(2).build(g);
    let reference = index.clone();
    let server = Server::bind(index, ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, reference, handle)
}

/// Opens a raw socket speaking the protocol by hand (for malformed input).
fn raw_connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    (BufReader::new(stream.try_clone().unwrap()), stream)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("server reply");
    line.trim_end().to_string()
}

/// The acceptance-criteria round trip: `loadgen` traffic over several
/// connections agrees with direct `WcIndex::distance`, the cache hit rate is
/// reported, and `SHUTDOWN` terminates the server cleanly.
#[test]
fn serve_loadgen_round_trip() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);
    let workload = QueryWorkload::uniform(&g, 400, 7);

    // First pass: individual QUERY requests; second pass: BATCH requests
    // replaying the same workload, so the cache must hit.
    for (pass, batch_size) in [(0usize, 0usize), (1, 13)] {
        let config = LoadgenConfig { connections: 3, batch_size, ..Default::default() };
        let (result, answers) =
            loadgen::run_against(&addr, "ba-90", &workload, &config).expect("loadgen run");
        assert_eq!(result.errors, 0, "pass {pass} had errors");
        assert_eq!(result.queries, workload.len());
        assert!(result.throughput_qps > 0.0);
        for (&(s, t, w), answer) in workload.queries().iter().zip(&answers) {
            assert_eq!(*answer, reference.distance(s, t, w), "pass {pass}: Q({s},{t},{w})");
        }
        if pass == 1 {
            // Pass 0 cached (at most) 400 distinct keys, pass 1 replays all
            // 400 of them: cumulatively at least half of all lookups hit.
            assert!(
                result.cache_hit_rate >= 0.49,
                "replayed workload should mostly hit the cache, got {}",
                result.cache_hit_rate
            );
        }
    }

    let mut client = Client::connect(&*addr).unwrap();
    client.shutdown().expect("clean shutdown");
    let summary = handle.join().expect("server thread joins after SHUTDOWN");
    assert_eq!(summary.queries as usize, workload.len(), "single-query pass counted");
    assert_eq!(summary.batch_queries as usize, workload.len(), "batched pass counted");
    assert!(summary.cache_hits > 0);
}

/// The `WCIF` serving path end to end: encode a flat snapshot, decode it the
/// way `wcsd-cli serve` does, hand the `Arc<FlatIndex>` to `bind_flat`, and
/// check wire answers (point, batch, within, stats) against the nested index.
#[test]
fn serve_from_flat_snapshot() {
    let g = test_graph();
    let nested = IndexBuilder::wc_index_plus().build(&g);
    let snapshot = FlatIndex::from_index(&nested).encode();
    let loaded = std::sync::Arc::new(FlatIndex::decode(&snapshot).expect("snapshot decodes"));

    let server = Server::bind_flat(loaded, ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    let workload = QueryWorkload::uniform(&g, 120, 11);
    let mut client = Client::connect(&*addr).unwrap();
    for &(s, t, w) in workload.queries() {
        assert_eq!(client.query(s, t, w), Ok(nested.distance(s, t, w)), "Q({s},{t},{w})");
    }
    let answers = client.batch(workload.queries()).expect("batch over flat index");
    for (&(s, t, w), answer) in workload.queries().iter().zip(&answers) {
        assert_eq!(*answer, nested.distance(s, t, w), "batched Q({s},{t},{w})");
    }
    // `within` runs uncached over the flat engine.
    let (s, t, w) = workload.queries()[0];
    if let Some(d) = nested.distance(s, t, w) {
        assert_eq!(client.within(s, t, w, d), Ok(true));
    }
    let stats = client.stats().expect("stats reply");
    assert_eq!(stats.vertices, g.num_vertices());
    assert_eq!(stats.entries, nested.total_entries());

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Malformed requests get `ERR` replies and never poison the connection.
#[test]
fn malformed_commands_are_rejected_not_fatal() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);
    let (mut reader, mut stream) = raw_connect(&addr);

    for bad in
        ["FOO 1 2 3", "QUERY 1", "QUERY a b c", "QUERY 1 2 3 4", "BATCH", "BATCH -5", "STATS x"]
    {
        writeln!(stream, "{bad}").unwrap();
        let reply = read_line(&mut reader);
        assert!(reply.starts_with("ERR "), "{bad:?} -> {reply:?}");
    }

    // The connection is still fully usable afterwards.
    writeln!(stream, "QUERY 0 1 1").unwrap();
    let reply = read_line(&mut reader);
    assert_eq!(
        wcsd_server::protocol::parse_distance_reply(&reply).unwrap(),
        reference.distance(0, 1, 1)
    );

    Client::connect(&*addr).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

/// Out-of-range vertex ids are rejected for QUERY, WITHIN, and inside BATCH.
#[test]
fn out_of_range_vertices_are_rejected() {
    let g = test_graph();
    let n = g.num_vertices() as u32;
    let (addr, _reference, handle) = start_server(&g);
    let mut client = Client::connect(&*addr).unwrap();

    assert!(client.query(n, 0, 1).unwrap_err().contains("out of range"));
    assert!(client.query(0, n + 7, 1).unwrap_err().contains("out of range"));
    assert!(client.within(n, 0, 1, 5).unwrap_err().contains("out of range"));
    let err = client.batch(&[(0, 1, 1), (n, 2, 1), (3, 4, 1)]).unwrap_err();
    assert!(err.contains("batch line 2"), "{err}");
    assert!(err.contains("out of range"), "{err}");

    // Oversized batches are rejected client-side before any bytes are sent,
    // so the connection cannot desynchronise.
    let oversized = vec![(0u32, 1u32, 1u32); wcsd_server::protocol::MAX_BATCH + 1];
    assert!(client.batch(&oversized).unwrap_err().contains("exceeds"));

    // In-range traffic still works on the same connection.
    assert!(client.query(0, 1, 1).is_ok());
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// `BATCH 0` is a valid empty batch, answered with a bare `OK 0` header.
#[test]
fn batch_zero_is_valid_and_empty() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);
    let mut client = Client::connect(&*addr).unwrap();

    assert_eq!(client.batch(&[]).unwrap(), Vec::<Option<u32>>::new());
    // Framing is intact: the next request on the same connection works.
    assert_eq!(client.query(2, 3, 1).unwrap(), reference.distance(2, 3, 1));

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Clients that disconnect mid-line (or mid-batch) must not take the server
/// down or corrupt other connections.
#[test]
fn mid_line_disconnect_is_harmless() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);

    {
        // Partial request line, no newline, then hard disconnect.
        let (_reader, mut stream) = raw_connect(&addr);
        stream.write_all(b"QUERY 1 2").unwrap();
        stream.flush().unwrap();
    }
    {
        // BATCH header promising more lines than the client ever sends.
        let (_reader, mut stream) = raw_connect(&addr);
        writeln!(stream, "BATCH 5").unwrap();
        writeln!(stream, "0 1 1").unwrap();
        stream.flush().unwrap();
    }

    {
        // A request line streamed without a newline is cut off at the
        // server's line cap with an ERR, instead of growing memory forever.
        let (mut reader, mut stream) = raw_connect(&addr);
        stream.write_all(&vec![b'Q'; 80 * 1024]).unwrap();
        stream.flush().unwrap();
        let reply = read_line(&mut reader);
        assert!(reply.starts_with("ERR request line exceeds"), "{reply:?}");
    }

    {
        // The cap also applies when the newline *did* arrive in the same
        // burst: an over-long terminated line is rejected, never parsed
        // (and never echoed back inside the ERR), and the connection drops.
        let (mut reader, mut stream) = raw_connect(&addr);
        let mut oversized = vec![b'Q'; 80 * 1024];
        oversized.push(b'\n');
        stream.write_all(&oversized).unwrap();
        stream.flush().unwrap();
        let reply = read_line(&mut reader);
        assert!(reply.starts_with("ERR request line exceeds"), "{reply:?}");
        assert!(reply.len() < 200, "the oversized line must not be echoed");
        let mut rest = String::new();
        assert_eq!(reader.read_to_string(&mut rest).unwrap(), 0, "connection closed");
    }

    // The server is still healthy for a well-behaved client.
    let mut client = Client::connect(&*addr).unwrap();
    assert_eq!(client.query(0, 5, 2).unwrap(), reference.distance(0, 5, 2));
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Many concurrent clients replaying overlapping workloads: every answer is
/// correct and the shared cache serves a substantial share of the lookups.
#[test]
fn concurrent_clients_share_the_cache() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);
    let workload = QueryWorkload::uniform(&g, 120, 99);
    let queries = workload.queries();

    // Warm the cache with one sequential pass so the concurrent phase below
    // has deterministic hit behaviour (no lockstep-miss races).
    let mut warm = Client::connect(&*addr).unwrap();
    for &(s, t, w) in queries {
        assert_eq!(warm.query(s, t, w).unwrap(), reference.distance(s, t, w));
    }

    std::thread::scope(|scope| {
        for _ in 0..6 {
            let addr = addr.clone();
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(&*addr).expect("connect");
                for &(s, t, w) in queries {
                    assert_eq!(client.query(s, t, w).unwrap(), reference.distance(s, t, w));
                }
            });
        }
    });

    let mut client = Client::connect(&*addr).unwrap();
    let stats = client.stats().unwrap();
    let lookups = stats.cache_hits + stats.cache_misses;
    assert_eq!(lookups as usize, 7 * queries.len(), "every query hit the cache layer");
    // After the warm pass every key is resident, so all 6 concurrent passes
    // hit: at most the warm pass' distinct keys ever miss.
    assert!(stats.hit_rate() > 0.5, "hit rate {}", stats.hit_rate());
    assert!(stats.cache_hits as usize >= 6 * queries.len());
    assert_eq!(stats.connections, 8); // warm + 6 workers + this stats client
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// `WITHIN` and `STATS` agree with the index served.
#[test]
fn within_and_stats_agree_with_index() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);
    let mut client = Client::connect(&*addr).unwrap();

    for &(s, t, w) in QueryWorkload::uniform(&g, 50, 3).queries() {
        for d in [0u32, 1, 3, u32::MAX] {
            assert_eq!(client.within(s, t, w, d).unwrap(), reference.within(s, t, w, d));
        }
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.vertices, reference.num_vertices());
    assert_eq!(stats.entries, reference.total_entries());
    assert_eq!(stats.queries, 200); // 50 workload queries x 4 bounds
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The binary protocol answers every verb identically to the text protocol,
/// and `STATS` reports the protocol mix.
#[test]
fn binary_protocol_matches_text() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);
    let mut text = Client::connect(&*addr).unwrap();
    let mut bin = Client::connect_with(&*addr, Protocol::Binary).unwrap();
    assert_eq!(bin.protocol(), Protocol::Binary);

    let workload = QueryWorkload::uniform(&g, 150, 17);
    for &(s, t, w) in workload.queries() {
        assert_eq!(bin.query(s, t, w), Ok(reference.distance(s, t, w)), "Q({s},{t},{w})");
    }
    // Batches (including an empty one) agree with the text client.
    assert_eq!(bin.batch(&[]).unwrap(), Vec::<Option<u32>>::new());
    assert_eq!(bin.batch(workload.queries()), text.batch(workload.queries()));
    let (s, t, w) = workload.queries()[0];
    for d in [0u32, 2, u32::MAX] {
        assert_eq!(bin.within(s, t, w, d), Ok(reference.within(s, t, w, d)));
    }
    // Errors surface with the same wording on both protocols.
    let n = g.num_vertices() as u32;
    let text_err = text.query(n, 0, 1).unwrap_err();
    let bin_err = bin.query(n, 0, 1).unwrap_err();
    assert_eq!(text_err, bin_err);
    assert!(bin.batch(&[(0, 1, 1), (n, 2, 1)]).unwrap_err().contains("batch line 2"));

    let stats = bin.stats().unwrap();
    assert!(stats.text_connections >= 1, "{stats:?}");
    assert!(stats.binary_connections >= 1, "{stats:?}");
    assert_eq!(stats.generation, 1);
    assert_eq!(stats.reloads, 0);
    assert!(stats.live_connections >= 2);

    // SHUTDOWN over the binary protocol is acknowledged with a BYE frame.
    bin.shutdown().unwrap();
    handle.join().unwrap();
}

/// Malformed binary frames: a bad version is fatal, an oversized length is
/// fatal, but a well-framed bad body only poisons that one request.
#[test]
fn binary_malformed_frames_are_contained() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);

    // Helper: read one reply frame body from a raw socket.
    fn read_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
        let mut len = [0u8; 4];
        stream.read_exact(&mut len).ok()?;
        let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
        stream.read_exact(&mut body).ok()?;
        Some(body)
    }

    {
        // Wrong version byte: one ERR frame, then the connection closes.
        let mut stream = TcpStream::connect(&*addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(&[0xBF, 0x7F]).unwrap();
        let body = read_frame(&mut stream).expect("version error frame");
        assert_eq!(body[0], 0xFF, "ERR opcode");
        assert!(String::from_utf8_lossy(&body[1..]).contains("version"));
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0, "connection closed");
    }
    {
        // A frame length beyond the cap is fatal.
        let mut stream = TcpStream::connect(&*addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(&[0xBF, 0x01]).unwrap();
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let body = read_frame(&mut stream).expect("length error frame");
        assert_eq!(body[0], 0xFF);
        assert!(String::from_utf8_lossy(&body[1..]).contains("exceeds"));
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0, "connection closed");
    }
    {
        // An unknown opcode in a well-formed frame gets an ERR frame and the
        // connection stays usable.
        let mut stream = TcpStream::connect(&*addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(&[0xBF, 0x01]).unwrap();
        stream.write_all(&2u32.to_le_bytes()).unwrap();
        stream.write_all(&[0x7E, 0x00]).unwrap();
        let body = read_frame(&mut stream).expect("opcode error frame");
        assert_eq!(body[0], 0xFF);
        assert!(String::from_utf8_lossy(&body[1..]).contains("opcode"));
        // A valid QUERY frame on the same connection still answers.
        let mut frame = vec![13, 0, 0, 0, 0x01];
        for v in [0u32, 1, 1] {
            frame.extend_from_slice(&v.to_le_bytes());
        }
        stream.write_all(&frame).unwrap();
        let body = read_frame(&mut stream).expect("query reply");
        assert_eq!(body[0], 0x81, "DIST opcode");
        let expect = reference.distance(0, 1, 1);
        match expect {
            Some(d) => assert_eq!((body[1], &body[2..6]), (1, &d.to_le_bytes()[..])),
            None => assert_eq!(body[1], 0),
        }
    }

    Client::connect(&*addr).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

/// `RELOAD` swaps the served snapshot live: answers flip to the new index,
/// the epoch-tagged cache never serves stale answers, and `STATS` reports
/// the new generation, entry counts, and reload counter.
#[test]
fn reload_swaps_snapshot_and_keeps_cache_coherent() {
    let (path_a, index_a) = write_snapshot(&test_graph(), "a");
    let (path_b, index_b) = write_snapshot(&other_graph(), "b");
    let served = std::sync::Arc::new(
        FlatIndex::decode(&std::fs::read(&path_a).unwrap()).expect("snapshot decodes"),
    );
    let server = Server::bind_flat(served, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    let workload = QueryWorkload::uniform(&test_graph(), 120, 31);
    let mut client = Client::connect(&*addr).unwrap();
    // Two passes so the second is answered from the cache.
    for _pass in 0..2 {
        for &(s, t, w) in workload.queries() {
            assert_eq!(client.query(s, t, w), Ok(index_a.distance(s, t, w)));
        }
    }
    assert!(client.stats().unwrap().cache_hits > 0, "second pass must hit the cache");

    let info = client.reload(&path_b).expect("reload");
    assert_eq!(info.generation, 2);
    assert_eq!(info.vertices as usize, index_b.num_vertices());
    assert_eq!(info.entries as usize, index_b.total_entries());

    // Every answer now comes from snapshot B — a stale cache would keep
    // serving A's answers for the warmed keys.
    for &(s, t, w) in workload.queries() {
        assert_eq!(client.query(s, t, w), Ok(index_b.distance(s, t, w)), "Q({s},{t},{w})");
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.generation, 2);
    assert_eq!(stats.reloads, 1);
    assert_eq!(stats.entries, index_b.total_entries());

    // Reload errors are reported and leave the old snapshot serving.
    assert!(client.reload("/nonexistent.fidx").unwrap_err().contains("cannot read"));
    assert_eq!(client.stats().unwrap().generation, 2);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Hot reload under load: concurrent connections stream batches across a
/// `RELOAD` to a different snapshot. No connection drops, and every batch
/// reply is consistent with exactly one snapshot (all-A or all-B, never
/// torn), even though the answers are served through the shared cache.
#[test]
fn reload_under_load_drops_nothing_and_tears_nothing() {
    let (path_a, index_a) = write_snapshot(&test_graph(), "a");
    let (path_b, index_b) = write_snapshot(&other_graph(), "b");
    let served = std::sync::Arc::new(
        FlatIndex::decode(&std::fs::read(&path_a).unwrap()).expect("snapshot decodes"),
    );
    let server = Server::bind_flat(served, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    // A probe batch whose answer vector differs between the snapshots, so a
    // torn (mixed-snapshot) reply is detectable.
    let probes: Vec<(u32, u32, u32)> =
        QueryWorkload::uniform(&test_graph(), 40, 47).queries().to_vec();
    let answers_a: Vec<Option<u32>> =
        probes.iter().map(|&(s, t, w)| index_a.distance(s, t, w)).collect();
    let answers_b: Vec<Option<u32>> =
        probes.iter().map(|&(s, t, w)| index_b.distance(s, t, w)).collect();
    assert_ne!(answers_a, answers_b, "snapshots must be distinguishable");

    let saw_b = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let addr = &addr;
            let (probes, answers_a, answers_b) = (&probes, &answers_a, &answers_b);
            let saw_b = &saw_b;
            scope.spawn(move || {
                let mut client = Client::connect_with(
                    &**addr,
                    if worker % 2 == 0 { Protocol::Text } else { Protocol::Binary },
                )
                .expect("connect");
                for round in 0..30 {
                    let got = client.batch(probes).expect("no dropped connections");
                    if got == *answers_b {
                        saw_b.fetch_add(1, Ordering::Relaxed);
                    } else {
                        assert_eq!(got, *answers_a, "worker {worker} round {round}: torn batch");
                    }
                }
            });
        }
        // Let the workers build up traffic, then swap mid-run.
        std::thread::sleep(Duration::from_millis(50));
        let mut admin = Client::connect(&*addr).expect("admin connect");
        let info = admin.reload(&path_b).expect("reload under load");
        assert_eq!(info.generation, 2);
    });
    // After the swap completes, fresh batches answer from B. (Whether the
    // workers observed B mid-run depends on timing — `saw_b` is informative
    // and the torn-batch assertion above is the real invariant.)
    let mut client = Client::connect(&*addr).unwrap();
    assert_eq!(client.batch(&probes).unwrap(), answers_b);
    let _races_observed = saw_b.load(Ordering::Relaxed);

    let stats = client.stats().unwrap();
    assert_eq!(stats.generation, 2);
    assert_eq!(stats.reloads, 1);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The acceptance-criteria scale test: one server process holds >= 256
/// concurrent connections, answers on all of them, survives a `RELOAD` with
/// zero dropped connections, and answers on all of them again from the new
/// snapshot.
#[test]
fn sustains_256_connections_across_reload() {
    let (path_a, index_a) = write_snapshot(&test_graph(), "a");
    let (path_b, index_b) = write_snapshot(&other_graph(), "b");
    let served = std::sync::Arc::new(
        FlatIndex::decode(&std::fs::read(&path_a).unwrap()).expect("snapshot decodes"),
    );
    let server = Server::bind_flat(served, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    const CONNS: usize = 260;
    let mut clients: Vec<Client> = (0..CONNS)
        .map(|i| {
            let proto = if i % 2 == 0 { Protocol::Text } else { Protocol::Binary };
            Client::connect_with(&*addr, proto).expect("connect")
        })
        .collect();
    for (i, client) in clients.iter_mut().enumerate() {
        let (s, t, w) = ((i % 90) as u32, ((i * 7 + 1) % 90) as u32, 1 + (i % 4) as u32);
        assert_eq!(client.query(s, t, w), Ok(index_a.distance(s, t, w)), "conn {i} pre-reload");
    }
    let mut admin = Client::connect(&*addr).unwrap();
    let stats = admin.stats().unwrap();
    assert!(
        stats.live_connections >= CONNS as u64,
        "expected >= {CONNS} live connections, got {}",
        stats.live_connections
    );

    admin.reload(&path_b).expect("reload with open connections");

    // Every pre-existing connection is still alive and now answers from B.
    for (i, client) in clients.iter_mut().enumerate() {
        let (s, t, w) = ((i % 90) as u32, ((i * 7 + 1) % 90) as u32, 1 + (i % 4) as u32);
        assert_eq!(client.query(s, t, w), Ok(index_b.distance(s, t, w)), "conn {i} post-reload");
    }
    let stats = admin.stats().unwrap();
    assert!(stats.live_connections > CONNS as u64, "no connection was dropped");
    assert_eq!(stats.generation, 2);

    drop(clients);
    admin.shutdown().unwrap();
    handle.join().unwrap();
}

/// A client that writes its requests and half-closes still gets every
/// reply (regression test — the first reactor cut dropped buffered complete
/// requests when the EOF arrived in the same read pass).
#[test]
fn half_close_still_gets_replies() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);

    let (mut reader, mut stream) = raw_connect(&addr);
    stream.write_all(b"QUERY 0 1 1\nQUERY 2 3 2\nWITHIN 0 1 1 9\n").unwrap();
    stream.flush().unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let first = read_line(&mut reader);
    assert_eq!(
        wcsd_server::protocol::parse_distance_reply(&first).unwrap(),
        reference.distance(0, 1, 1)
    );
    let second = read_line(&mut reader);
    assert_eq!(
        wcsd_server::protocol::parse_distance_reply(&second).unwrap(),
        reference.distance(2, 3, 2)
    );
    let third = read_line(&mut reader);
    assert!(third == "TRUE" || third == "FALSE");
    let mut rest = String::new();
    assert_eq!(reader.read_to_string(&mut rest).unwrap(), 0, "server closes after serving");

    // A fire-and-forget SHUTDOWN (write + immediate full close) must still
    // stop the server.
    let (_reader, mut stream) = raw_connect(&addr);
    stream.write_all(b"SHUTDOWN\n").unwrap();
    stream.flush().unwrap();
    drop(stream);
    handle.join().expect("server stops on fire-and-forget SHUTDOWN");
}

/// A batch in flight when another client sends SHUTDOWN is still answered:
/// shutdown drains the worker pool before hanging up (regression test —
/// the first reactor cut dropped in-flight replies on shutdown).
#[test]
fn shutdown_answers_in_flight_batches() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);

    // Large enough to still be computing when the SHUTDOWN lands.
    let queries: Vec<(u32, u32, u32)> =
        (0..60_000u32).map(|i| (i % 90, (i * 13 + 1) % 90, 1 + i % 4)).collect();
    let expected: Vec<Option<u32>> =
        queries.iter().map(|&(s, t, w)| reference.distance(s, t, w)).collect();
    std::thread::scope(|scope| {
        let (addr, queries, expected) = (&addr, &queries, &expected);
        scope.spawn(move || {
            let mut client = Client::connect(&**addr).expect("connect");
            let answers = client.batch(queries).expect("in-flight batch answered at shutdown");
            assert_eq!(answers, *expected);
        });
        std::thread::sleep(Duration::from_millis(100));
        Client::connect(addr.as_str()).unwrap().shutdown().expect("shutdown acknowledged");
    });
    handle.join().unwrap();
}

/// Disconnected clients are reaped: the live-connection gauge drops back
/// down and their slots are reused (regression test — the first reactor cut
/// leaked the bookkeeping for every closed connection).
#[test]
fn closed_connections_are_reaped() {
    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);

    for round in 0..3 {
        let mut transient = Client::connect(&*addr).unwrap();
        assert_eq!(transient.query(0, 1, 1), Ok(reference.distance(0, 1, 1)), "round {round}");
        drop(transient);
    }
    let mut client = Client::connect(&*addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().unwrap();
        if stats.live_connections == 1 {
            assert_eq!(stats.connections, 4, "3 transients + this client");
            break;
        }
        assert!(Instant::now() < deadline, "transient connections were never reaped: {stats:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// A stalled server cannot hang a client forever: the configurable read
/// timeout errors the call out (the client-side mirror of the server's
/// write-stall deadline).
#[test]
fn client_read_timeout_prevents_hang() {
    // A "server" that accepts and then never replies.
    let gate = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = gate.local_addr().unwrap().to_string();
    let hold = std::thread::spawn(move || {
        let (stream, _) = gate.accept().unwrap();
        std::thread::sleep(Duration::from_secs(20));
        drop(stream);
    });

    let mut client = Client::connect(&*addr).unwrap();
    client.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
    let started = Instant::now();
    let err = client.query(0, 1, 1).unwrap_err();
    assert!(started.elapsed() < Duration::from_secs(10), "timed out far too late");
    assert!(err.contains("receive failed"), "{err}");
    drop(client);
    // The holder thread exits on its own schedule; don't block the suite.
    drop(hold);
}

/// `METRICS` end to end on both protocols: per-verb counters appear with the
/// right values, the execute-phase histogram reconciles exactly with the verb
/// counters inside every single payload — including payloads scraped while
/// concurrent mixed-protocol load is in flight — and a quiesced scrape agrees
/// with `STATS`.
#[test]
fn metrics_reconcile_with_stats_under_concurrent_load() {
    use wcsd_obs::scrape::Scrape;

    /// sum over verbs of `wcsd_requests_total{proto=..}` must equal the
    /// execute-phase histogram count for that protocol in the same payload:
    /// both are mutated only on the reactor thread, and the payload renders
    /// before the in-flight METRICS request counts itself.
    fn assert_reconciled(scrape: &Scrape, proto: &str, context: &str) {
        let label = format!("proto=\"{proto}\"");
        let verbs = scrape.sum_matching("wcsd_requests_total", &[&label]);
        let execute =
            scrape.histogram("wcsd_request_phase_us", &[&label, "phase=\"execute\""]).count;
        assert_eq!(verbs as u64, execute, "{context}: proto={proto} verbs vs execute samples");
    }

    let g = test_graph();
    let (addr, reference, handle) = start_server(&g);
    let workload = QueryWorkload::uniform(&g, 80, 53);
    let queries = workload.queries();

    std::thread::scope(|scope| {
        for worker in 0..4 {
            let addr = &addr;
            let reference = &reference;
            scope.spawn(move || {
                let proto = if worker % 2 == 0 { Protocol::Text } else { Protocol::Binary };
                let mut client = Client::connect_with(&**addr, proto).expect("connect");
                for round in 0..10 {
                    for &(s, t, w) in queries {
                        assert_eq!(client.query(s, t, w).unwrap(), reference.distance(s, t, w));
                    }
                    assert_eq!(client.batch(queries).unwrap().len(), queries.len());
                    let (s, t, w) = queries[round % queries.len()];
                    client.within(s, t, w, 3).unwrap();
                }
            });
        }
        // Mid-load scrapes: each payload must already reconcile on both
        // protocols while the workers are hammering the reactor.
        let mut observer = Client::connect(&*addr).expect("observer connect");
        for i in 0..5 {
            let scrape = Scrape::parse(&observer.metrics(false).expect("mid-load scrape"));
            assert_reconciled(&scrape, "text", &format!("mid-load scrape {i}"));
            assert_reconciled(&scrape, "binary", &format!("mid-load scrape {i}"));
        }
    });

    // Quiesced: one final scrape, then STATS on the same connection.
    let mut client = Client::connect(&*addr).unwrap();
    let payload = client.metrics(false).expect("final scrape");
    let scrape = Scrape::parse(&payload);
    assert_reconciled(&scrape, "text", "quiesced scrape");
    assert_reconciled(&scrape, "binary", "quiesced scrape");

    // Every exercised verb shows up per protocol with the exact load counts:
    // 2 workers per protocol x 10 rounds x (80 queries + 1 batch + 1 within).
    for proto in ["text", "binary"] {
        let verb = |v: &str| {
            scrape
                .value(&format!("wcsd_requests_total{{proto=\"{proto}\",verb=\"{v}\"}}"))
                .unwrap_or(-1.0) as i64
        };
        assert_eq!(verb("query"), 1600, "proto={proto}");
        assert_eq!(verb("batch"), 20, "proto={proto}");
        assert_eq!(verb("within"), 20, "proto={proto}");
    }

    // The scrape agrees with STATS (no traffic ran in between): the snapshot
    // and the registry read the same underlying counters.
    let stats = client.stats().unwrap();
    assert_eq!(scrape.value("wcsd_queries_total").unwrap() as u64, stats.queries);
    assert_eq!(scrape.value("wcsd_batches_total").unwrap() as u64, stats.batches);
    assert_eq!(scrape.value("wcsd_batch_queries_total").unwrap() as u64, stats.batch_queries);
    assert_eq!(scrape.value("wcsd_reloads_total").unwrap() as u64, stats.reloads);
    assert_eq!(scrape.value("wcsd_generation").unwrap() as u64, stats.generation);
    assert_eq!(scrape.value("wcsd_index_entries").unwrap() as usize, stats.entries);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The slow-query log: with `slow_query_ms = 0` every inline query lands in
/// the trace ring, retrievable as `METRICS recent` JSON on both protocols.
#[test]
fn slow_query_log_captures_requests() {
    let g = test_graph();
    let index = IndexBuilder::wc_index_plus().build(&g);
    let reference = index.clone();
    let config = ServerConfig { slow_query_ms: Some(0), ..ServerConfig::default() };
    let server = Server::bind(index, config).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&*addr).unwrap();
    assert_eq!(client.query(0, 1, 1).unwrap(), reference.distance(0, 1, 1));
    client.within(0, 1, 1, 5).unwrap();

    let trace = client.metrics(true).expect("recent trace");
    assert!(trace.contains("\"slow_query\""), "no slow_query events in {trace}");
    assert!(trace.contains("QUERY 0 1 1"), "request detail missing in {trace}");

    // The binary protocol returns the same ring.
    let mut bin = Client::connect_with(&*addr, Protocol::Binary).unwrap();
    let trace = bin.metrics(true).expect("recent trace over binary");
    assert!(trace.contains("\"slow_query\""));

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// `--no-metrics` semantics: counters (and therefore `STATS` and the verb
/// counters in `METRICS`) stay live, but phase histograms record nothing.
#[test]
fn disabled_metrics_keep_counters_but_not_histograms() {
    use wcsd_obs::scrape::Scrape;

    let g = test_graph();
    let index = IndexBuilder::wc_index_plus().build(&g);
    let config = ServerConfig { metrics_enabled: false, ..ServerConfig::default() };
    let server = Server::bind(index, config).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&*addr).unwrap();
    for i in 0..10u32 {
        client.query(i, (i + 1) % 10, 1).unwrap();
    }
    let scrape = Scrape::parse(&client.metrics(false).unwrap());
    assert_eq!(
        scrape.value("wcsd_requests_total{proto=\"text\",verb=\"query\"}"),
        Some(10.0),
        "verb counters stay on without metrics"
    );
    assert_eq!(scrape.value("wcsd_queries_total"), Some(10.0));
    let execute =
        scrape.histogram("wcsd_request_phase_us", &["proto=\"text\"", "phase=\"execute\""]);
    assert_eq!(execute.count, 0, "no histogram samples with metrics disabled");
    assert_eq!(client.stats().unwrap().queries, 10);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The full freshness pipeline end to end: a live server, a feed run that
/// applies mixed updates through the decremental repair, writes
/// generation-numbered snapshots, and hot-swaps each one via `RELOAD` — after
/// which the served answers match the live dynamic index, the generation
/// advanced once per batch, and a deleted edge's answer actually changed on
/// the wire.
#[test]
fn feed_pipeline_updates_are_servable() {
    use wcsd_bench::freshness::{run_feed, EdgeUpdate, FeedConfig};
    use wcsd_core::dynamic::DynamicWcIndex;

    let g = test_graph();
    let mut dyn_idx = DynamicWcIndex::new(&g, IndexBuilder::wc_index_plus());
    dyn_idx.set_repair_threshold(1.0);
    let server =
        Server::bind_flat(dyn_idx.freeze(), ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    // Pick a served edge and remember its pre-deletion wire answer.
    let e = g.edges().next().expect("test graph has edges");
    let mut probe = Client::connect(&*addr).unwrap();
    let before = probe.query(e.u, e.v, e.quality).unwrap();
    assert_eq!(before, Some(1), "an edge answers its own quality level in one hop");

    // A vertex not adjacent to 0, so the add below is a genuine new edge.
    let far = (1..90u32).rev().find(|&v| g.edge_quality(0, v).is_none()).expect("non-neighbor");
    let updates = vec![
        EdgeUpdate::Add { u: 0, v: far, q: 4 },
        EdgeUpdate::Remove { u: e.u, v: e.v },
        EdgeUpdate::Add {
            u: 5,
            v: (6..90u32).rev().find(|&v| g.edge_quality(5, v).is_none()).expect("non-neighbor"),
            q: 2,
        },
        EdgeUpdate::Remove { u: 0, v: far },
    ];
    let dir = std::env::temp_dir().join(format!("wcsd-feed-e2e-{}", std::process::id()));
    let config = FeedConfig { batch_size: 2, addr: Some(addr.clone()), ..Default::default() };
    let (result, snapshots) =
        run_feed("ba-90", &mut dyn_idx, &updates, &dir, &config).expect("feed run");

    assert_eq!(result.batches, 2);
    assert_eq!(result.adds, 2);
    assert_eq!(result.removes, 2);
    assert_eq!(result.rebuild_fallbacks, 0, "threshold 1.0 never falls back");
    assert_eq!(result.repairs, 2);
    assert!(result.affected_hubs > 0);
    assert_eq!(result.final_generation, 3, "startup generation 1 + one reload per batch");
    assert!(result.freshness_p50_us > 0.0);
    assert!(result.freshness_p50_us <= result.freshness_max_us);
    assert_eq!(snapshots.len(), 2);

    // The deleted edge's answer changed on the wire, and the served snapshot
    // now agrees with the live dynamic index everywhere.
    let after = probe.query(e.u, e.v, e.quality).unwrap();
    assert_ne!(after, before, "deletion must be servable after the reload");
    assert_eq!(after, dyn_idx.distance(e.u, e.v, e.quality));
    for s in (0..90).step_by(3) {
        for t in (0..90).step_by(4) {
            for w in 1..=4 {
                assert_eq!(probe.query(s, t, w), Ok(dyn_idx.distance(s, t, w)), "Q({s},{t},{w})");
            }
        }
    }
    let stats = probe.stats().unwrap();
    assert_eq!(stats.generation, 3);
    assert_eq!(stats.reloads, 2);

    probe.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
