//! Integration tests that pin the repository to the paper's own worked
//! examples: Example 1 (Figure 2), Examples 2–4 and Table II (Figure 3).

use wcsd::prelude::*;
use wcsd_core::LabelEntry;
use wcsd_graph::generators::{paper_figure2, paper_figure3};
use wcsd_graph::INF_QUALITY;
use wcsd_order::natural_order;

/// Example 1: dist¹(v0, v8) = 2 and dist²(v0, v8) = 3 on Figure 2's graph.
#[test]
fn example1_figure2_distances() {
    let g = paper_figure2();
    let idx = IndexBuilder::wc_index_plus().build(&g);
    assert_eq!(idx.distance(0, 8, 1), Some(2));
    assert_eq!(idx.distance(0, 8, 2), Some(3));
}

/// Example 3: query Q(v2, v5, 2) over Figure 3 returns 2.
#[test]
fn example3_figure3_query() {
    let g = paper_figure3();
    for builder in [
        IndexBuilder::wc_index(),
        IndexBuilder::wc_index_plus(),
        IndexBuilder::new().ordering(OrderingStrategy::TreeDecomposition),
    ] {
        let idx = builder.build(&g);
        assert_eq!(idx.distance(2, 5, 2), Some(2));
    }
}

/// Table II: the exact WC-INDEX contents of Figure 3 under the natural vertex
/// hierarchy (v0 the most important hub).
#[test]
fn table2_exact_index_contents() {
    let g = paper_figure3();
    let idx = IndexBuilder::new()
        .ordering(OrderingStrategy::Natural)
        .build_with_order(&g, natural_order(&g));

    let expected: [&[(u32, u32, u32)]; 6] = [
        &[(0, 0, INF_QUALITY)],
        &[(0, 1, 3), (1, 0, INF_QUALITY)],
        &[(0, 2, 3), (1, 1, 5), (2, 0, INF_QUALITY)],
        &[(0, 1, 1), (0, 2, 2), (0, 3, 3), (1, 1, 2), (1, 2, 4), (2, 1, 4), (3, 0, INF_QUALITY)],
        &[
            (0, 2, 1),
            (0, 3, 2),
            (0, 4, 3),
            (1, 2, 2),
            (1, 3, 4),
            (2, 2, 4),
            (3, 1, 4),
            (4, 0, INF_QUALITY),
        ],
        &[
            (0, 2, 1),
            (0, 3, 2),
            (0, 5, 3),
            (1, 2, 2),
            (1, 4, 3),
            (2, 2, 2),
            (2, 3, 3),
            (3, 1, 2),
            (3, 2, 3),
            (4, 1, 3),
            (5, 0, INF_QUALITY),
        ],
    ];

    for (v, want) in expected.iter().enumerate() {
        let got: Vec<LabelEntry> = idx.labels(v as u32).entries().to_vec();
        let want: Vec<LabelEntry> =
            want.iter().map(|&(h, d, w)| LabelEntry::new(h, d, w)).collect();
        assert_eq!(got, want, "L(v{v}) does not match Table II");
    }
}

/// Example 2 (path dominance): the minimal paths the paper lists are exactly
/// the distances the index reports.
#[test]
fn example2_path_dominance_consequences() {
    let g = paper_figure3();
    let idx = IndexBuilder::wc_index_plus().build(&g);
    // {v0→v3→v4} is the minimal 1-path between v0 and v4 (length 2).
    assert_eq!(idx.distance(0, 4, 1), Some(2));
    // {v1→v2→v3} is both the minimal 3-path and minimal 4-path between v1, v3.
    assert_eq!(idx.distance(1, 3, 3), Some(2));
    assert_eq!(idx.distance(1, 3, 4), Some(2));
    // {v1→v3} is the minimal 1- and 2-path (direct edge of quality 2).
    assert_eq!(idx.distance(1, 3, 2), Some(1));
}

/// The constructed index is sound, complete and minimal on the paper graphs.
#[test]
fn figure_graphs_index_invariants() {
    for g in [paper_figure2(), paper_figure3()] {
        let idx = IndexBuilder::wc_index_plus().build(&g);
        assert!(idx.dominated_entries().is_empty());
        assert!(idx.unnecessary_entries().is_empty());
        // Completeness / soundness versus the online oracle.
        for s in 0..g.num_vertices() as u32 {
            for t in 0..g.num_vertices() as u32 {
                for &w in &g.distinct_qualities() {
                    assert_eq!(
                        idx.distance(s, t, w),
                        wcsd::baselines::online::constrained_bfs(&g, s, t, w)
                    );
                }
            }
        }
    }
}
