//! Builder equivalence: the multi-threaded index construction of
//! `wcsd_core::parallel_build` must produce **exactly** the label sets of the
//! sequential builder — same entries, same counts, byte-identical snapshots —
//! for every thread count, on every index variant.
//!
//! The suite hashes the complete label structure (per-vertex entry sequences
//! in canonical order) so a single stray, missing or re-ordered entry fails
//! loudly, and exercises:
//!
//! * the fixture graph (`tests/fixtures/smoke.edges`);
//! * seeded random graphs from all generator families;
//! * both construction modes and several orderings;
//! * the weighted, directed, and path variants;
//! * `threads(1)` and `threads(0)` (= all cores) against the default build.

use std::hash::{Hash, Hasher};
use wcsd::core::directed::DirectedWcIndex;
use wcsd::core::path::PathIndex;
use wcsd::core::weighted::WeightedWcIndex;
use wcsd::graph::directed::DiGraphBuilder;
use wcsd::graph::generators::{
    barabasi_albert, erdos_renyi, paper_figure3, road_grid, watts_strogatz, QualityAssigner,
    RoadGridConfig,
};
use wcsd::graph::weighted::WeightedGraphBuilder;
use wcsd::graph::{DiGraph, Graph, VertexId, WeightedGraph};
use wcsd::prelude::*;

/// Stable fingerprint of a full label structure: vertex count plus every
/// entry in canonical per-vertex order.
fn fingerprint<'a>(
    num_vertices: usize,
    labels_of: impl Fn(VertexId) -> &'a wcsd::core::LabelSet,
) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    num_vertices.hash(&mut h);
    for v in 0..num_vertices as VertexId {
        let set = labels_of(v);
        set.len().hash(&mut h);
        for e in set.entries() {
            e.hash(&mut h);
        }
    }
    h.finish()
}

fn index_fingerprint(idx: &WcIndex) -> u64 {
    fingerprint(idx.num_vertices(), |v| idx.labels(v))
}

fn test_graphs() -> Vec<(String, Graph)> {
    let q = QualityAssigner::uniform(5);
    vec![
        ("fixture".to_string(), {
            wcsd::graph::io::read_graph_file("tests/fixtures/smoke.edges", false)
                .expect("fixture graph must load")
        }),
        ("ba-400".to_string(), barabasi_albert(400, 4, &q, 11)),
        ("er-300".to_string(), erdos_renyi(300, 0.03, &QualityAssigner::uniform(4), 23)),
        ("ws-350".to_string(), watts_strogatz(350, 6, 0.1, &QualityAssigner::uniform(3), 31)),
        ("grid-18".to_string(), road_grid(&RoadGridConfig::square(18), &q, 47)),
    ]
}

#[test]
fn unweighted_parallel_build_is_byte_identical() {
    for (name, g) in test_graphs() {
        for (mode_name, builder) in
            [("basic", IndexBuilder::wc_index()), ("plus", IndexBuilder::wc_index_plus())]
        {
            let sequential = builder.clone().build(&g);
            let expected = index_fingerprint(&sequential);
            for threads in [2usize, 4, 8] {
                let parallel = builder.clone().threads(threads).build(&g);
                assert_eq!(
                    index_fingerprint(&parallel),
                    expected,
                    "{name}/{mode_name}: {threads}-thread build diverged"
                );
                // Belt and braces: the serialized snapshots must be identical
                // bytes, which is the strongest equivalence the API exposes.
                assert_eq!(
                    parallel.encode(),
                    sequential.encode(),
                    "{name}/{mode_name}: {threads}-thread snapshot bytes diverged"
                );
            }
        }
    }
}

#[test]
fn one_thread_is_the_sequential_builder() {
    // `threads(1)` must take the plain sequential path (not just agree with
    // it), so this holds on every graph without any batching in play.
    for (name, g) in test_graphs() {
        let default_build = IndexBuilder::default().build(&g);
        let one_thread = IndexBuilder::default().threads(1).build(&g);
        assert_eq!(
            one_thread.encode(),
            default_build.encode(),
            "{name}: threads(1) is not the sequential build"
        );
    }
}

#[test]
fn zero_threads_uses_all_cores_and_stays_identical() {
    let g = barabasi_albert(300, 3, &QualityAssigner::uniform(4), 5);
    let sequential = IndexBuilder::default().build(&g);
    let auto = IndexBuilder::default().threads(0).build(&g);
    assert_eq!(auto.encode(), sequential.encode());
}

#[test]
fn orderings_stay_identical_under_parallel_build() {
    let g = barabasi_albert(250, 3, &QualityAssigner::uniform(4), 77);
    for ordering in
        [OrderingStrategy::Degree, OrderingStrategy::Hybrid, OrderingStrategy::TreeDecomposition]
    {
        let sequential = IndexBuilder::new().ordering(ordering).build(&g);
        let parallel = IndexBuilder::new().ordering(ordering).threads(4).build(&g);
        assert_eq!(parallel.encode(), sequential.encode(), "{ordering:?} diverged");
    }
}

fn random_weighted(n: usize, edges: usize, seed: u64) -> WeightedGraph {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = WeightedGraphBuilder::new(n);
    for _ in 0..edges {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            b.add_edge(u, v, rng.gen_range(1..=4), rng.gen_range(1..=9));
        }
    }
    b.build()
}

#[test]
fn weighted_parallel_build_is_identical() {
    for seed in 0..3u64 {
        let g = random_weighted(220, 900, seed);
        let sequential = WeightedWcIndex::build(&g);
        let expected = fingerprint(g.num_vertices(), |v| sequential.labels(v));
        for threads in [2usize, 4] {
            let parallel = WeightedWcIndex::build_threads(&g, threads);
            assert_eq!(
                fingerprint(g.num_vertices(), |v| parallel.labels(v)),
                expected,
                "weighted seed {seed}, {threads} threads"
            );
        }
    }
}

fn random_digraph(n: usize, arcs: usize, seed: u64) -> DiGraph {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = DiGraphBuilder::new(n);
    for _ in 0..arcs {
        b.add_arc(rng.gen_range(0..n as u32), rng.gen_range(0..n as u32), rng.gen_range(1..=4));
    }
    b.build()
}

#[test]
fn directed_parallel_build_is_identical() {
    for seed in 0..3u64 {
        let g = random_digraph(200, 1000, seed);
        let sequential = DirectedWcIndex::build(&g);
        let out_fp = fingerprint(g.num_vertices(), |v| sequential.out_labels(v));
        let in_fp = fingerprint(g.num_vertices(), |v| sequential.in_labels(v));
        for threads in [2usize, 4] {
            let parallel = DirectedWcIndex::build_threads(&g, threads);
            assert_eq!(
                fingerprint(g.num_vertices(), |v| parallel.out_labels(v)),
                out_fp,
                "directed L_out seed {seed}, {threads} threads"
            );
            assert_eq!(
                fingerprint(g.num_vertices(), |v| parallel.in_labels(v)),
                in_fp,
                "directed L_in seed {seed}, {threads} threads"
            );
        }
    }
}

#[test]
fn path_parallel_build_reconstructs_identical_paths() {
    // PathIndex does not expose its quad labels, so equivalence is asserted
    // behaviourally: identical distances and identical reconstructed paths
    // (parent pointers included) on every sampled triple.
    let g = erdos_renyi(120, 0.05, &QualityAssigner::uniform(4), 9);
    let sequential = PathIndex::build(&g);
    let parallel = PathIndex::build_threads(&g, 4);
    for s in (0..120).step_by(3) {
        for t in (0..120).step_by(5) {
            for w in 1..=4u32 {
                assert_eq!(
                    sequential.distance(s, t, w),
                    parallel.distance(s, t, w),
                    "distance Q({s},{t},{w})"
                );
                assert_eq!(
                    sequential.shortest_path(s, t, w),
                    parallel.shortest_path(s, t, w),
                    "path Q({s},{t},{w})"
                );
            }
        }
    }
}

#[test]
fn parallel_build_agrees_with_online_oracle() {
    // Equivalence to the sequential build is the headline; this sanity check
    // re-anchors the parallel result to ground truth independently.
    let g = paper_figure3();
    let idx = IndexBuilder::wc_index_plus().threads(3).build(&g);
    assert_eq!(idx.distance(2, 5, 2), Some(2));
    assert_eq!(idx.distance(2, 5, 3), Some(3));
    assert_eq!(idx.distance(2, 5, 99), None);
    let big = barabasi_albert(300, 3, &QualityAssigner::uniform(4), 3);
    let par = IndexBuilder::default().threads(4).build(&big);
    let seq = IndexBuilder::default().build(&big);
    for s in (0..300).step_by(17) {
        for t in (0..300).step_by(13) {
            for w in 1..=4u32 {
                assert_eq!(par.distance(s, t, w), seq.distance(s, t, w));
            }
        }
    }
}
