//! Minimal, dependency-free stand-in for the `rand` crate (0.8 API subset).
//!
//! Vendored because this build environment has no registry access. It
//! implements exactly the surface this workspace uses: a seedable
//! [`rngs::StdRng`], the [`Rng`] extension methods `gen`, `gen_range` and
//! `gen_bool`, [`distributions::WeightedIndex`] and
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — statistically
//! solid for synthetic-graph generation, deterministic per seed, but **not**
//! bit-compatible with upstream rand's ChaCha-based `StdRng`.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Core entropy source: one uniformly distributed `u64` per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a seed; identical seeds yield identical
    /// output streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from one draw of 64 bits.
pub trait Standard: Sized {
    /// Maps 64 uniform bits to a uniform value of `Self`.
    fn from_uniform_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_uniform_bits(bits: u64) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_uniform_bits(bits: u64) -> Self {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_uniform_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    #[inline]
    fn from_uniform_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn from_uniform_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Returns `true` when the range contains no values.
    fn is_empty_range(&self) -> bool;
    /// Maps 64 uniform bits into the range. Must not be called on an empty
    /// range.
    fn sample_from_bits(&self, bits: u64) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
            #[inline]
            fn sample_from_bits(&self, bits: u64) -> $t {
                let span = (self.end as u128) - (self.start as u128);
                self.start + (bits as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
            #[inline]
            fn sample_from_bits(&self, bits: u64) -> $t {
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                self.start() + (bits as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn is_empty_range(&self) -> bool {
        // NaN endpoints compare as incomparable and therefore count as empty.
        self.start.partial_cmp(&self.end) != Some(core::cmp::Ordering::Less)
    }
    #[inline]
    fn sample_from_bits(&self, bits: u64) -> f64 {
        self.start + f64::from_uniform_bits(bits) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`], mirroring rand 0.8.
pub trait Rng: RngCore {
    /// Uniform sample of the full range of `T` (for `f64`/`f32`: `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_uniform_bits(self.next_u64())
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        assert!(!range.is_empty_range(), "cannot sample from an empty range");
        range.sample_from_bits(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let z: usize = rng.gen_range(0..9);
            assert!(z < 9);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed counts: {counts:?}");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen_range(0..100)
        }
        let mut rng = StdRng::seed_from_u64(9);
        assert!(sample(&mut rng) < 100);
    }
}
