//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seedable generator: SplitMix64.
///
/// Not bit-compatible with upstream rand's ChaCha12-based `StdRng`, but fully
/// deterministic per seed and statistically sound for the synthetic-data
/// workloads in this repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    #[inline]
    fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
