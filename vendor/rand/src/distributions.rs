//! Distribution sampling (the subset the workspace uses: `WeightedIndex`).

use crate::Rng;
use core::borrow::Borrow;

/// Types that can sample values of `T` given an entropy source.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`WeightedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// The weight collection was empty.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl core::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NoItem => write!(f, "no weights provided"),
            Self::InvalidWeight => write!(f, "weight is negative or not finite"),
            Self::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices `0..n` proportionally to a list of `f64` weights.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the sampler from relative weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(Self { cumulative })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("validated non-empty");
        let x = rng.gen::<f64>() * total;
        // First cumulative weight strictly greater than x.
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&x).expect("weights are finite")) {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn respects_weights() {
        let dist = WeightedIndex::new([1.0, 0.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 2 * counts[0], "counts: {counts:?}");
        assert!(counts[0] > 5_000);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(WeightedIndex::new(Vec::<f64>::new().iter()), Err(WeightedError::NoItem));
        assert_eq!(WeightedIndex::new([1.0, -2.0]), Err(WeightedError::InvalidWeight));
        assert_eq!(WeightedIndex::new([0.0, 0.0]), Err(WeightedError::AllWeightsZero));
        assert_eq!(WeightedIndex::new([f64::NAN]), Err(WeightedError::InvalidWeight));
    }
}
