//! Sequence helpers (the subset the workspace uses: in-place shuffle).

use crate::Rng;

/// Randomisation methods on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` for an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn shuffle_deterministic_per_seed() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        a.shuffle(&mut StdRng::seed_from_u64(3));
        b.shuffle(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [7u32, 8, 9];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
