//! Minimal, dependency-free stand-in for the `bytes` crate (1.x API subset).
//!
//! Vendored because this build environment has no registry access. Provides
//! exactly what the snapshot encoders/decoders in this workspace use:
//! [`BytesMut`] with [`BufMut`] little-endian writers, a frozen [`Bytes`]
//! buffer, and a cursor-style [`Buf`] implementation for `&[u8]`.

/// An immutable byte buffer, dereferencing to `[u8]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Number of bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for the empty buffer.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    #[inline]
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with the given capacity reserved.
    #[inline]
    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[inline]
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u32` in little-endian order.
    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Cursor-style read access over a byte source.
///
/// The implementation for `&[u8]` advances the slice itself, so a local
/// `let mut buf: &[u8] = data;` works as a consuming reader.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    #[inline]
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"HDR!");
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_u64_le(u64::MAX - 1);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 4 + 4 + 1 + 8);

        let mut r: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HDR!");
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }

    #[test]
    fn bytes_derefs_and_slices() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_u32_le(1);
        let b = buf.freeze();
        assert_eq!(b[..2].len(), 2);
        assert_eq!(b.as_ref(), &[1, 0, 0, 0]);
        assert!(!b.is_empty());
    }
}
