//! Minimal, dependency-free stand-in for the `criterion` crate (0.5 API
//! subset).
//!
//! Vendored because this build environment has no registry access. It keeps
//! the workspace's `benches/` targets compiling and runnable: each benchmark
//! runs its closure for a fixed number of timed iterations and prints the
//! mean wall-clock time. No statistics, no HTML reports — swap back to
//! upstream criterion for real measurements.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching criterion's API.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { criterion: self, name, sample_size: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.effective_sample_size(), &mut f);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.effective_sample_size(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }
}

/// Identifier combining a function name and a parameter, as in criterion.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timer handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher { samples: Vec::with_capacity(sample_size), iterations: sample_size };
    f(&mut bencher);
    let total: Duration = bencher.samples.iter().sum();
    let samples = bencher.samples.len().max(1);
    println!("  {label}: mean {:?} over {} samples", total / samples as u32, samples);
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut count = 0u32;
        group.bench_function("counting", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(count >= 3, "closure must actually run");
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_runner_work() {
        benches();
    }
}
